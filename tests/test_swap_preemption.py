"""Tests for swap-based preemption (vLLM's alternative to recompute)."""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_engine
from repro.memory.block_manager import PagedBlockManager
from repro.scheduling.vllm import VLLMScheduler
from repro.types import RequestPhase, SchedulerKind

from tests.conftest import make_request

KV_BYTES = 1024  # per token, arbitrary but nonzero


def swap_scheduler(capacity=160):
    memory = PagedBlockManager(capacity, block_size=16, watermark=0.0)
    return VLLMScheduler(
        memory,
        max_batch_size=8,
        preemption_mode="swap",
        kv_bytes_per_token=KV_BYTES,
    )


class TestConstruction:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="preemption_mode"):
            VLLMScheduler(PagedBlockManager(1024), preemption_mode="magic")

    def test_swap_requires_kv_bytes(self):
        with pytest.raises(ValueError, match="kv_bytes_per_token"):
            VLLMScheduler(PagedBlockManager(1024), preemption_mode="swap")


class TestSwapLifecycle:
    def _two_decoders(self, scheduler):
        # Block geometry chosen so the EARLY request eventually needs a
        # block while the LATE one is running (early evicting late is
        # the swap path; a request evicting itself recomputes).
        early = make_request(prompt_len=60, output_len=40, arrival_time=0.0)
        late = make_request(prompt_len=80, output_len=40, arrival_time=0.1)
        scheduler.add_request(early, now=0.0)
        scheduler.on_batch_complete(scheduler.schedule(now=0.0), now=0.1)
        scheduler.add_request(late, now=0.1)
        scheduler.on_batch_complete(scheduler.schedule(now=0.1), now=0.2)
        return early, late

    def test_victim_is_swapped_not_restarted(self):
        scheduler = swap_scheduler()
        early, late = self._two_decoders(scheduler)
        now = 0.2
        while not scheduler.num_swap_outs and now < 50:
            batch = scheduler.schedule(now)
            if batch is None:
                break
            now += 0.1
            scheduler.on_batch_complete(batch, now)
        assert scheduler.num_swap_outs >= 1
        assert late in scheduler.swapped or late.num_restarts == 0
        # Swapped request keeps its computed state.
        if late in scheduler.swapped:
            assert late.phase is RequestPhase.PREEMPTED
            assert late.prefill_done == late.prefill_target

    def test_swap_bytes_charged_to_batches(self):
        scheduler = swap_scheduler()
        self._two_decoders(scheduler)
        now = 0.2
        swap_bytes_seen = 0
        for _ in range(300):
            batch = scheduler.schedule(now)
            if batch is None:
                if not scheduler.has_work:
                    break
                now += 0.1
                continue
            swap_bytes_seen += batch.swap_bytes
            now += 0.1
            scheduler.on_batch_complete(batch, now)
        assert scheduler.num_swap_outs >= 1
        assert scheduler.num_swap_ins >= 1
        # Out + in volumes both charged.
        assert swap_bytes_seen >= 2 * KV_BYTES * 64

    def test_all_requests_complete_under_swap(self):
        scheduler = swap_scheduler(capacity=320)
        requests = [
            make_request(prompt_len=64, output_len=30, arrival_time=0.0)
            for _ in range(4)
        ]
        for r in requests:
            scheduler.add_request(r, now=0.0)
        now = 0.0
        for _ in range(5000):
            batch = scheduler.schedule(now)
            if batch is None:
                if not scheduler.has_work:
                    break
                now += 0.1
                continue
            now += 0.1
            scheduler.on_batch_complete(batch, now)
        assert all(r.is_finished for r in requests)

    def test_self_preemption_falls_back_to_recompute(self):
        scheduler = swap_scheduler(capacity=48)
        only = make_request(prompt_len=48, output_len=10)
        scheduler.add_request(only, now=0.0)
        scheduler.on_batch_complete(scheduler.schedule(now=0.0), now=0.1)
        assert not scheduler._preempt_for_decode(only)
        # Recompute path: restarted and re-queued, not parked in swap.
        assert only.num_restarts == 1
        assert only not in scheduler.swapped


class TestEngineChargesSwapTime:
    def test_swap_traffic_extends_iterations(self, tiny_deployment):
        config = ServingConfig(
            scheduler=SchedulerKind.VLLM, preemption_mode="swap"
        )
        engine = build_engine(tiny_deployment, config)
        # Shrink memory to force swapping.
        engine.scheduler.memory = PagedBlockManager(
            4096, block_size=16, watermark=0.0
        )
        trace = [
            make_request(prompt_len=600, output_len=120, arrival_time=0.0)
            for _ in range(8)
        ]
        result = engine.run(trace)
        assert all(r.is_finished for r in result.requests)
        assert engine.scheduler.num_swap_outs > 0
        # Swap transfers show up as communication time on stage 0.
        assert any(r.breakdown.communication > 0 for r in result.records)

    def test_swap_roundtrips_preserve_progress(self, tiny_deployment):
        """Every swap-out is matched by a swap-in, and swapping adds no
        re-prefill work: total recorded prefill equals the requests'
        prefill targets (which only self-preemption recomputes grow)."""
        config = ServingConfig(scheduler=SchedulerKind.VLLM, preemption_mode="swap")
        engine = build_engine(tiny_deployment, config)
        engine.scheduler.memory = PagedBlockManager(
            4096, block_size=16, watermark=0.0
        )
        trace = [
            make_request(prompt_len=600, output_len=120, arrival_time=0.0)
            for _ in range(8)
        ]
        result = engine.run(trace)
        scheduler = engine.scheduler
        assert scheduler.num_swap_outs > 0
        assert scheduler.num_swap_ins == scheduler.num_swap_outs
        recorded_prefill = sum(r.num_prefill_tokens for r in result.records)
        base_prefill = sum(r.prompt_len for r in trace)
        # All extra prefill work is attributable to recompute restarts
        # (self-preemptions); swap round-trips themselves add none.
        total_restarts = sum(r.num_restarts for r in trace)
        max_restart_cost = max(r.prompt_len + r.output_len for r in trace)
        assert recorded_prefill >= base_prefill
        assert recorded_prefill <= base_prefill + total_restarts * max_restart_cost
