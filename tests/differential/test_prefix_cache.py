"""Differential: prefix caching and conversations across both engines.

Conversation workloads are closed-loop — each engine run drives its own
``ConversationWorkload`` instance (same spec, same seed), so the global
request-id counter assigns different ids to the two runs' requests.
Requests are therefore compared in creation order on every externally
visible field *except* ``request_id``; creation order itself matches
because follow-up injection happens at finish events, which the
bit-identity of the two engines keeps in lockstep.

Matrix dimensions: scheduler (all three paged families, covering every
post-admission chunk-recompute site), cache off / on-all-miss / on,
and memory pressure (eviction + preemption + registration interleaved).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ServingConfig, build_engine
from repro.types import SchedulerKind
from repro.workload.conversation import ConversationSpec, ConversationWorkload
from repro.workload.distributions import FixedLengths

from tests.conftest import shrink_kv_memory
from tests.differential.conftest import golden_trace

pytestmark = pytest.mark.tier1

SCHEDULERS = [
    SchedulerKind.SARATHI,
    SchedulerKind.VLLM,
    SchedulerKind.CHUNKED_ONLY,
]


def conversation_timelines(result) -> list[tuple]:
    """Per-request timelines in creation order, request ids excluded."""
    return [
        (
            r.arrival_time,
            r.prompt_len,
            r.output_len,
            r.prefix_id,
            r.prefix_len,
            r.first_scheduled_at,
            r.first_token_at,
            r.finished_at,
            tuple(r.token_times),
            r.num_emitted,
            r.num_restarts,
            r.is_finished,
        )
        for r in result.requests
    ]


def assert_conversation_identical(golden, candidate) -> None:
    assert conversation_timelines(golden) == conversation_timelines(candidate)
    assert golden_trace(golden) == golden_trace(candidate)
    assert golden.makespan == candidate.makespan
    assert golden.num_preemptions == candidate.num_preemptions
    assert golden.prefix_stats == candidate.prefix_stats


def small_spec(prefix_mode: str = "conversation", **overrides) -> ConversationSpec:
    defaults = dict(
        num_conversations=8,
        first_turn_lengths=FixedLengths(120),
        followup_turn_lengths=FixedLengths(48),
        response_lengths=FixedLengths(12),
        mean_rounds=4.0,
        mean_think_time=0.3,
        arrival_qps=2.0,
        prefix_mode=prefix_mode,
    )
    defaults.update(overrides)
    return ConversationSpec(**defaults)


def run_conversation_pair(
    deployment,
    config: ServingConfig,
    spec: ConversationSpec,
    seed: int = 0,
    shrink_memory: bool = False,
):
    """One conversation workload through both engines, fresh state each."""
    results = {}
    for kind in ("object", "vectorized"):
        workload = ConversationWorkload(spec, seed=seed)
        built = build_engine(deployment, dataclasses.replace(config, engine=kind))
        if shrink_memory:
            shrink_kv_memory(built, prefix_cache=config.prefix_cache)
        results[kind] = built.run(
            workload.initial_requests(), followup_fn=workload.followup
        )
    return results["object"], results["vectorized"]


@pytest.mark.parametrize("kind", SCHEDULERS)
@pytest.mark.parametrize("cache", [False, True], ids=["cache_off", "cache_on"])
def test_conversation_workload_matches(tiny_deployment, kind, cache):
    """Conversation matrix cell: engines bit-identical, cache off and on."""
    config = ServingConfig(scheduler=kind, token_budget=256, prefix_cache=cache)
    obj, vec = run_conversation_pair(tiny_deployment, config, small_spec())
    if cache:
        assert obj.prefix_stats is not None
        assert obj.prefix_stats.hits > 0  # the cell exercises the hit path
    assert_conversation_identical(obj, vec)


@pytest.mark.parametrize("kind", SCHEDULERS)
def test_all_miss_cache_equals_cache_off(tiny_deployment, kind):
    """With unique prefix ids (every lookup misses), enabling the cache
    must not perturb either engine: all four runs share one timeline."""
    spec = small_spec(prefix_mode="unique")
    config = ServingConfig(scheduler=kind, token_budget=256)
    obj_off, vec_off = run_conversation_pair(tiny_deployment, config, spec)
    obj_on, vec_on = run_conversation_pair(
        tiny_deployment, dataclasses.replace(config, prefix_cache=True), spec
    )
    assert obj_on.prefix_stats is not None
    assert obj_on.prefix_stats.hits == 0
    assert obj_on.prefix_stats.misses > 0
    assert_conversation_identical(obj_off, vec_off)
    assert_conversation_identical(obj_on, vec_on)
    # Cache-on all-miss ≡ cache-off, for both engines.
    assert conversation_timelines(obj_on) == conversation_timelines(obj_off)
    assert golden_trace(obj_on) == golden_trace(obj_off)
    assert conversation_timelines(vec_on) == conversation_timelines(vec_off)


@pytest.mark.parametrize("kind", [SchedulerKind.SARATHI, SchedulerKind.VLLM])
def test_cache_under_memory_pressure(tiny_deployment, kind):
    """Eviction of retained entries, preemption of claimants and
    re-registration must interleave identically in both engines."""
    spec = small_spec(
        num_conversations=10,
        first_turn_lengths=FixedLengths(360),
        followup_turn_lengths=FixedLengths(60),
        response_lengths=FixedLengths(40),
        mean_think_time=0.05,
        arrival_qps=8.0,
        mean_rounds=3.0,
    )
    config = ServingConfig(scheduler=kind, token_budget=256, prefix_cache=True)
    obj, vec = run_conversation_pair(
        tiny_deployment, config, spec, shrink_memory=True
    )
    # The cell must exercise pressure *and* the cache, not pass vacuously.
    assert obj.num_preemptions > 0 or obj.prefix_stats.evictions > 0
    assert obj.prefix_stats.hits > 0
    assert_conversation_identical(obj, vec)
