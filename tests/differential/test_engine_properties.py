"""Engine-invariant property tests, run against both cores.

Three invariants no engine may break, whatever the workload:

* **Request conservation** — every offered request finishes exactly
  once, emitting exactly ``output_len`` tokens, and the iteration
  records account for every prefill/decode token exactly once.
* **Monotone completion** — per-request timestamps advance:
  arrival ≤ first schedule ≤ first token ≤ finish, with sorted
  token times.
* **KV-occupancy bounds** — at every engine step the KV pool stays
  inside [0, capacity], even under eviction pressure.

The ``engine`` fixture runs each property against the object core and
the vectorized core; the golden matrix separately pins them to each
other bit-for-bit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Deployment, ServingConfig, build_engine
from repro.hardware.catalog import A100_80G
from repro.models.catalog import TINY_1B
from repro.types import Request, SchedulerKind

from tests.conftest import shrink_kv_memory

pytestmark = pytest.mark.tier1

_DEPLOYMENT = Deployment(model=TINY_1B, gpu=A100_80G)
_SCHEDULERS = [
    SchedulerKind.SARATHI,
    SchedulerKind.VLLM,
    SchedulerKind.FASTER_TRANSFORMER,
]

# The `engine` fixture is an immutable engine-kind string, constant for
# every example of one test run — safe to reuse across examples.
_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def traces(draw):
    num = draw(st.integers(min_value=1, max_value=12))
    gap = draw(st.floats(min_value=0.0, max_value=0.1))
    trace = []
    for i in range(num):
        trace.append(
            Request(
                prompt_len=draw(st.integers(min_value=8, max_value=256)),
                output_len=draw(st.integers(min_value=1, max_value=16)),
                arrival_time=round(gap * i, 4),
            )
        )
    return trace


@_SETTINGS
@given(trace=traces(), kind=st.sampled_from(_SCHEDULERS))
def test_request_conservation(engine, trace, kind):
    config = ServingConfig(scheduler=kind, token_budget=256, engine=engine)
    built = build_engine(_DEPLOYMENT, config)
    result = built.run(trace)

    assert len(result.requests) == len(trace)
    assert not result.unfinished
    for request in result.requests:
        assert request.is_finished
        assert request.num_emitted == request.output_len
        assert len(request.token_times) == request.output_len

    # Token accounting: with no preemption pressure, the records carry
    # each prompt token exactly once and each decode token exactly once
    # (the first output token comes from prefill, not decode).
    stage0 = [r for r in result.records if r.stage == 0]
    assert sum(r.num_prefill_tokens for r in stage0) == sum(
        r.prompt_len for r in trace
    )
    assert sum(r.num_decode_tokens for r in stage0) == sum(
        r.output_len - 1 for r in trace
    )


@_SETTINGS
@given(trace=traces(), kind=st.sampled_from(_SCHEDULERS))
def test_monotone_completion_times(engine, trace, kind):
    config = ServingConfig(scheduler=kind, token_budget=256, engine=engine)
    built = build_engine(_DEPLOYMENT, config)
    built.run(trace)

    for request in trace:
        assert request.first_scheduled_at >= request.arrival_time
        assert request.first_token_at >= request.first_scheduled_at
        assert request.token_times == sorted(request.token_times)
        assert request.token_times[0] == request.first_token_at
        assert request.finished_at == request.token_times[-1]


@_SETTINGS
@given(
    kind=st.sampled_from([SchedulerKind.SARATHI, SchedulerKind.VLLM]),
    num_requests=st.integers(min_value=2, max_value=8),
    output_len=st.integers(min_value=50, max_value=200),
)
def test_kv_occupancy_bounded_under_pressure(engine, kind, num_requests, output_len):
    """Stepped run on a shrunken KV pool: occupancy stays in [0, 1]."""
    config = ServingConfig(
        scheduler=kind, token_budget=256, preemption_mode="recompute", engine=engine
    )
    built = build_engine(_DEPLOYMENT, config)
    shrink_kv_memory(built)
    memory = built.scheduler.memory

    for i in range(num_requests):
        built.deliver(
            Request(prompt_len=128, output_len=output_len, arrival_time=0.0), 0.0
        )
        assert 0.0 <= memory.occupancy <= 1.0

    steps = 0
    while built.next_event_time() is not None:
        built.step()
        steps += 1
        assert 0.0 <= memory.occupancy <= 1.0
        assert 0 <= memory.free_token_slots <= memory.total_token_slots
        assert steps < 1_000_000, "engine failed to drain"

    assert all(r.is_finished for r in built.all_requests)
