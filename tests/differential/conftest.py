"""Canonicalization helpers shared by the differential tests.

Comparisons are exact — full ``IterationRecord`` fields (including the
float time breakdown) and full per-request timelines.  Two things are
deliberately excluded:

* ``batch_id`` absolute values: they come from a process-global
  counter, so both traces are relabelled in insertion order and the
  *pattern* of ids is compared instead.
* ``cache_stats`` / ``engine_stats``: they describe the machinery that
  produced the result (cache hit counts, wall time), not the simulated
  system, and legitimately differ between the two engines.
"""

from __future__ import annotations

import dataclasses
import random

from repro.api import build_engine, clone_requests
from repro.types import Request
from repro.workload.datasets import (
    ARXIV_SUMMARIZATION,
    SHAREGPT4,
    generate_requests,
)

from tests.conftest import shrink_kv_memory


def golden_trace(result) -> list[dict]:
    """Iteration records as comparable rows, batch ids relabelled."""
    records = sorted(result.records, key=lambda r: (r.start, r.stage))
    id_order: dict[int, int] = {}
    rows = []
    for record in records:
        row = dataclasses.asdict(record)
        row["batch_id"] = id_order.setdefault(record.batch_id, len(id_order))
        rows.append(row)
    return rows


def request_timelines(result) -> list[tuple]:
    """Every externally visible per-request timestamp, by request id."""
    return [
        (
            r.request_id,
            r.arrival_time,
            r.prompt_len,
            r.output_len,
            r.first_scheduled_at,
            r.first_token_at,
            r.finished_at,
            tuple(r.token_times),
            r.num_emitted,
            r.num_restarts,
            r.is_finished,
        )
        for r in sorted(result.requests, key=lambda r: r.request_id)
    ]


def assert_results_identical(golden, candidate) -> None:
    """Bit-exact equivalence of two ``SimulationResult``s."""
    assert request_timelines(golden) == request_timelines(candidate)
    assert golden_trace(golden) == golden_trace(candidate)
    assert golden.makespan == candidate.makespan
    assert golden.num_preemptions == candidate.num_preemptions
    assert sorted(r.request_id for r in golden.unfinished) == sorted(
        r.request_id for r in candidate.unfinished
    )


def run_engine_pair(
    deployment,
    config,
    trace,
    *,
    shrink_memory: bool = False,
    max_time: float | None = None,
):
    """Run one trace through both engines; returns (object, vectorized).

    Each engine gets its own clone of the trace so the mutation of
    ``Request`` state by one run cannot leak into the other.
    """
    results = {}
    for kind in ("object", "vectorized"):
        built = build_engine(deployment, dataclasses.replace(config, engine=kind))
        if shrink_memory:
            shrink_kv_memory(built)
        results[kind] = built.run(clone_requests(trace), max_time=max_time)
    return results["object"], results["vectorized"]


def _decode_heavy(num_requests: int, seed: int) -> list[Request]:
    """Short prompts, long generations: stresses decode batching,
    KV growth at schedule time, and the preemption machinery."""
    rng = random.Random(seed)
    now = 0.0
    trace = []
    for _ in range(num_requests):
        now += rng.expovariate(4.0)
        trace.append(
            Request(
                prompt_len=rng.randint(32, 96),
                output_len=rng.randint(16, 64),
                arrival_time=now,
            )
        )
    return trace


# The three workload shapes of the golden matrix: a chat-style mixed
# trace, a long-prompt summarization trace, and a synthetic
# decode-heavy trace.
WORKLOADS = {
    "sharegpt": lambda n, seed: generate_requests(
        SHAREGPT4, num_requests=n, qps=2.0, seed=seed
    ),
    "arxiv": lambda n, seed: generate_requests(
        ARXIV_SUMMARIZATION, num_requests=n, qps=1.0, seed=seed
    ),
    "decode_heavy": _decode_heavy,
}
