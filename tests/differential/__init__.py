"""Differential golden-reference suite: object engine vs vectorized.

The object engine (``repro.engine.replica.ReplicaEngine``) is the
ground truth; the vectorized core must reproduce it bit-for-bit on
every supported configuration.  Any divergence found here is a release
blocker, never something to paper over with tolerances.
"""
