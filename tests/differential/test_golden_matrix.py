"""The golden matrix: vectorized engine vs the object ground truth.

Every cell runs one fixed workload through both engines and asserts
bit-identical results (full iteration records, full request
timelines).  A small slice of the matrix gates every PR; the full
schedulers × workloads × fault/no-fault × seeds matrix runs under
``--runslow`` (nightly in CI).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ServingConfig, build_engine, clone_requests
from repro.cluster.fleet import FaultSchedule, FleetConfig, simulate_fleet
from repro.types import SchedulerKind

from tests.conftest import make_request
from tests.differential.conftest import (
    WORKLOADS,
    assert_results_identical,
    request_timelines,
    run_engine_pair,
)

pytestmark = pytest.mark.tier1

# The vectorized core supports every built-in scheduler, including the
# dynamic-budget Sarathi variant; only policy-protocol plug-ins stay
# object-only.
PR_SCHEDULERS = [
    SchedulerKind.SARATHI,
    SchedulerKind.SARATHI_DYNAMIC,
    SchedulerKind.VLLM,
    SchedulerKind.FASTER_TRANSFORMER,
]
ALL_SCHEDULERS = PR_SCHEDULERS + [
    SchedulerKind.ORCA,
    SchedulerKind.CHUNKED_ONLY,
    SchedulerKind.HYBRID_ONLY,
]
SEEDS = [0, 1, 2]


def _config(kind: SchedulerKind, **extra) -> ServingConfig:
    return ServingConfig(scheduler=kind, token_budget=256, **extra)


# ----------------------------------------------------------------------
# Single replica
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("kind", PR_SCHEDULERS)
def test_single_replica_small(tiny_deployment, kind, workload):
    """The every-PR slice: 3 schedulers × 3 workloads at small N."""
    trace = WORKLOADS[workload](14, 0)
    obj, vec = run_engine_pair(tiny_deployment, _config(kind), trace)
    assert_results_identical(obj, vec)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("kind", ALL_SCHEDULERS)
def test_single_replica_full_matrix(tiny_deployment, kind, workload, seed):
    trace = WORKLOADS[workload](20, seed)
    obj, vec = run_engine_pair(tiny_deployment, _config(kind), trace)
    assert_results_identical(obj, vec)


@pytest.mark.parametrize("mode", ["recompute", "swap"])
@pytest.mark.parametrize("kind", [SchedulerKind.VLLM, SchedulerKind.SARATHI])
def test_preemption_and_swap_pressure(tiny_deployment, kind, mode):
    """Eviction, restart and swap paths must also match bit-for-bit."""
    trace = [
        make_request(prompt_len=256, output_len=300, arrival_time=0.005 * i)
        for i in range(10)
    ]
    config = _config(kind, preemption_mode=mode)
    obj, vec = run_engine_pair(
        tiny_deployment, config, trace, shrink_memory=True
    )
    # The cell must actually exercise the pressure path, not pass
    # vacuously on an unpressured run.
    assert obj.num_preemptions > 0
    assert_results_identical(obj, vec)


def test_max_time_cutoff_matches(tiny_deployment):
    """A capped run stops both engines at the same event horizon."""
    trace = WORKLOADS["decode_heavy"](30, 1)
    obj, vec = run_engine_pair(
        tiny_deployment, _config(SchedulerKind.SARATHI), trace, max_time=2.0
    )
    assert obj.unfinished  # the cap bit, or the test proves nothing
    assert_results_identical(obj, vec)


def test_engine_stats_agree_on_work_done(tiny_deployment):
    """Event and batch counts describe the same simulation."""
    trace = WORKLOADS["sharegpt"](14, 0)
    obj, vec = run_engine_pair(tiny_deployment, _config(SchedulerKind.SARATHI), trace)
    assert obj.engine_stats is not None and vec.engine_stats is not None
    assert obj.engine_stats.kind == "object"
    assert vec.engine_stats.kind == "vectorized"
    assert obj.engine_stats.num_events == vec.engine_stats.num_events
    assert obj.engine_stats.num_batches == vec.engine_stats.num_batches


# ----------------------------------------------------------------------
# Pipeline parallelism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", PR_SCHEDULERS)
def test_pipeline_small(tiny_pp_deployment, kind):
    """Every-PR pipeline slice: pp=2 stage overlap matches bit-for-bit."""
    trace = WORKLOADS["sharegpt"](14, 0)
    obj, vec = run_engine_pair(tiny_pp_deployment, _config(kind), trace)
    assert_results_identical(obj, vec)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("kind", ALL_SCHEDULERS)
def test_pipeline_full_matrix(tiny_pp_deployment, kind, workload, seed):
    trace = WORKLOADS[workload](20, seed)
    obj, vec = run_engine_pair(tiny_pp_deployment, _config(kind), trace)
    assert_results_identical(obj, vec)


@pytest.mark.parametrize(
    "kind", [SchedulerKind.SARATHI, SchedulerKind.SARATHI_DYNAMIC]
)
def test_pipeline_preemption_pressure(tiny_pp_deployment, kind):
    """In-flight rows must be exempt from eviction in both engines."""
    trace = [
        make_request(prompt_len=256, output_len=300, arrival_time=0.005 * i)
        for i in range(10)
    ]
    config = _config(kind, preemption_mode="recompute")
    obj, vec = run_engine_pair(
        tiny_pp_deployment, config, trace, shrink_memory=True
    )
    assert obj.num_preemptions > 0
    assert_results_identical(obj, vec)


def test_policy_scheduler_rejected_by_vectorized_names_capable(tiny_deployment):
    """Object-only schedulers fail loudly and name the vectorized ones."""
    from repro.scheduling import registry as sched_registry
    from repro.scheduling.theory import SRPTOraclePolicy

    sched_registry.register_policy(
        "test_object_only", lambda ctx: SRPTOraclePolicy()
    )
    try:
        config = ServingConfig(scheduler="test_object_only", engine="vectorized")
        with pytest.raises(ValueError) as err:
            build_engine(tiny_deployment, config)
        for name in sched_registry.vectorized_names():
            assert name in str(err.value)
        assert "sarathi_dynamic" in str(err.value)
    finally:
        sched_registry.unregister("test_object_only")


# ----------------------------------------------------------------------
# Fleet: fault / no-fault
# ----------------------------------------------------------------------
def _fleet_events(result) -> list[dict]:
    return [dataclasses.asdict(event) for event in result.events]


FLEET_FAULTS = {
    "no_fault": FaultSchedule(),
    "crash": FaultSchedule.single(1, down_at=2.0, up_at=4.0),
    "slowdown": FaultSchedule.single(
        1, down_at=1.0, up_at=4.0, kind="slowdown", severity=3.0
    ),
    "capacity_loss": FaultSchedule.single(
        1, down_at=1.0, up_at=4.0, kind="capacity_loss", severity=0.6
    ),
}


def _run_fleet_pair(deployment, kind, trace, fault_mode: str):
    fleet_config = FleetConfig(
        num_replicas=3,
        faults=FLEET_FAULTS[fault_mode],
    )
    out = {}
    for engine in ("object", "vectorized"):
        config = _config(kind, engine=engine)
        out[engine] = simulate_fleet(
            deployment, config, clone_requests(trace), fleet_config
        )
    return out["object"], out["vectorized"]


@pytest.mark.parametrize("fault_mode", sorted(FLEET_FAULTS))
@pytest.mark.parametrize("kind", PR_SCHEDULERS)
def test_fleet_small(tiny_deployment, kind, fault_mode):
    """Every-PR fleet slice: routing, failover, restarts and the
    degraded-mode fault kinds (slowdown, capacity_loss) all match."""
    trace = WORKLOADS["sharegpt"](16, 0)
    (obj_result, obj_metrics), (vec_result, vec_metrics) = _run_fleet_pair(
        tiny_deployment, kind, trace, fault_mode
    )
    assert request_timelines(obj_result.merged()) == request_timelines(
        vec_result.merged()
    )
    assert _fleet_events(obj_result) == _fleet_events(vec_result)
    assert obj_result.assignments == vec_result.assignments
    assert [r.request_id for r in obj_result.shed] == [
        r.request_id for r in vec_result.shed
    ]
    assert obj_metrics == vec_metrics


@pytest.mark.parametrize("kind", [SchedulerKind.SARATHI, SchedulerKind.VLLM])
def test_fleet_capacity_pressure(tiny_deployment, kind):
    """A near-total mid-run KV shrink must force preemptions on the
    degraded replica and still match bit-for-bit — the free pool goes
    negative and both engines work the deficit off identically."""
    trace = [
        make_request(prompt_len=256, output_len=300, arrival_time=0.005 * i)
        for i in range(12)
    ]
    fleet_config = FleetConfig(
        num_replicas=2,
        faults=FaultSchedule.single(
            0, down_at=0.05, up_at=5.0, kind="capacity_loss", severity=0.999
        ),
    )
    out = {}
    for engine in ("object", "vectorized"):
        config = _config(kind, engine=engine)
        out[engine] = simulate_fleet(
            tiny_deployment, config, clone_requests(trace), fleet_config
        )
    (obj_result, obj_metrics), (vec_result, vec_metrics) = (
        out["object"],
        out["vectorized"],
    )
    # The cell must actually exercise the pressure path.
    assert obj_result.merged().num_preemptions > 0
    assert request_timelines(obj_result.merged()) == request_timelines(
        vec_result.merged()
    )
    assert _fleet_events(obj_result) == _fleet_events(vec_result)
    assert obj_metrics == vec_metrics


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fault_mode", sorted(FLEET_FAULTS))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("kind", PR_SCHEDULERS)
def test_fleet_full_matrix(tiny_deployment, kind, workload, fault_mode, seed):
    """The acceptance matrix: ≥3 schedulers × 3 workloads ×
    4 fault modes × 3 seeds, all bit-identical."""
    trace = WORKLOADS[workload](16, seed)
    (obj_result, obj_metrics), (vec_result, vec_metrics) = _run_fleet_pair(
        tiny_deployment, kind, trace, fault_mode
    )
    assert request_timelines(obj_result.merged()) == request_timelines(
        vec_result.merged()
    )
    assert _fleet_events(obj_result) == _fleet_events(vec_result)
    assert obj_metrics == vec_metrics
