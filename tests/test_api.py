"""Tests for the high-level Deployment / ServingConfig / simulate API."""

from __future__ import annotations

import pytest

from repro.api import (
    Deployment,
    ServingConfig,
    build_memory,
    build_scheduler,
    clone_requests,
    simulate,
)
from repro.core.sarathi import SarathiScheduler
from repro.hardware.catalog import A100_80G
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.models.catalog import TINY_1B, YI_34B
from repro.parallel.config import ParallelConfig
from repro.scheduling.ablations import ChunkedPrefillsOnlyScheduler
from repro.scheduling.faster_transformer import FasterTransformerScheduler
from repro.scheduling.orca import OrcaScheduler
from repro.scheduling.vllm import VLLMScheduler
from repro.types import SchedulerKind

from tests.conftest import make_request


class TestDeployment:
    def test_label(self):
        d = Deployment(
            model=YI_34B, gpu=A100_80G, parallel=ParallelConfig(tensor_parallel=2)
        )
        assert d.label == "Yi-34B/A100-80GB/TP2-PP1"

    def test_execution_model_wiring(self, tiny_deployment):
        exec_model = tiny_deployment.execution_model()
        assert exec_model.model is TINY_1B
        assert exec_model.gpu is A100_80G

    def test_kv_capacity_reservation_smaller(self, tiny_deployment):
        paged = tiny_deployment.kv_capacity_tokens(reservation_style=False)
        reserved = tiny_deployment.kv_capacity_tokens(reservation_style=True)
        assert reserved < paged


class TestBuildScheduler:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (SchedulerKind.FASTER_TRANSFORMER, FasterTransformerScheduler),
            (SchedulerKind.ORCA, OrcaScheduler),
            (SchedulerKind.VLLM, VLLMScheduler),
            (SchedulerKind.SARATHI, SarathiScheduler),
            (SchedulerKind.CHUNKED_ONLY, ChunkedPrefillsOnlyScheduler),
            (SchedulerKind.HYBRID_ONLY, SarathiScheduler),
        ],
    )
    def test_all_kinds_buildable(self, tiny_deployment, kind, cls):
        scheduler = build_scheduler(tiny_deployment, ServingConfig(scheduler=kind))
        assert isinstance(scheduler, cls)

    def test_memory_family_matches_scheduler(self, tiny_deployment):
        orca_mem = build_memory(
            tiny_deployment, ServingConfig(scheduler=SchedulerKind.ORCA)
        )
        vllm_mem = build_memory(
            tiny_deployment, ServingConfig(scheduler=SchedulerKind.VLLM)
        )
        assert isinstance(orca_mem, ReservationManager)
        assert isinstance(vllm_mem, PagedBlockManager)

    def test_hybrid_only_has_chunking_disabled(self, tiny_deployment):
        s = build_scheduler(
            tiny_deployment, ServingConfig(scheduler=SchedulerKind.HYBRID_ONLY)
        )
        assert not s.chunk_prefills

    def test_with_budget_helper(self):
        config = ServingConfig(token_budget=512)
        assert config.with_budget(2048).token_budget == 2048
        assert config.token_budget == 512  # original untouched


class TestCloneRequests:
    def test_clone_isolates_mutation(self):
        original = [make_request(prompt_len=50, output_len=3)]
        clones = clone_requests(original)
        clones[0].record_prefill(50, now=1.0)
        assert original[0].prefill_done == 0
        assert clones[0].prefill_done == 50

    def test_clone_preserves_fields(self):
        original = [make_request(prompt_len=50, output_len=3, arrival_time=2.0)]
        clone = clone_requests(original)[0]
        assert clone.prompt_len == 50
        assert clone.arrival_time == 2.0
        assert clone.request_id == original[0].request_id


class TestSimulate:
    def test_returns_result_and_metrics(self, tiny_deployment):
        trace = [make_request(prompt_len=64, output_len=3) for _ in range(5)]
        result, metrics = simulate(tiny_deployment, ServingConfig(), trace)
        assert metrics.num_requests == 5
        assert len(result.finished_requests) == 5

    def test_input_trace_not_mutated(self, tiny_deployment):
        trace = [make_request(prompt_len=64, output_len=3)]
        simulate(tiny_deployment, ServingConfig(), trace)
        assert trace[0].prefill_done == 0
        assert not trace[0].is_finished

    def test_same_trace_reusable_across_schedulers(self, tiny_deployment):
        trace = [
            make_request(prompt_len=64, output_len=3, arrival_time=0.01 * i)
            for i in range(6)
        ]
        for kind in SchedulerKind:
            _, metrics = simulate(
                tiny_deployment, ServingConfig(scheduler=kind), trace
            )
            assert metrics.num_requests == 6
