"""Tests for the event queue and the replica engine."""

from __future__ import annotations

import pytest

from repro.api import Deployment, ServingConfig, build_engine, simulate
from repro.engine.simulator import EventQueue
from repro.types import Request, SchedulerKind

from tests.conftest import make_request

pytestmark = pytest.mark.tier1


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_now_advances(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        assert q.now == 5.0

    def test_push_into_past_rejected(self):
        q = EventQueue()
        q.push(5.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.push(4.0, "y")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "x")
        assert q
        assert len(q) == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_time_rejected(self, bad):
        # Regression: a NaN-timed entry compares false against every
        # other entry, silently corrupting heap order instead of failing.
        q = EventQueue()
        q.push(1.0, "ok")
        with pytest.raises(ValueError, match="non-finite"):
            q.push(bad, "bad")
        assert len(q) == 1
        assert q.pop()[1] == "ok"

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_time_caught_on_pop_and_peek(self, bad):
        # Regression: the guard must also fire on the way *out*.  An
        # entry that slipped in around push() (direct heap surgery, a
        # buggy subclass) sits at the root comparing false against
        # everything; pop/peek must fail loudly instead of silently
        # reordering every later pop.
        import heapq

        from repro.engine.simulator import _Entry

        for probe in ("peek_time", "pop"):
            q = EventQueue()
            heapq.heappush(q._heap, _Entry(bad, 0, "bad", None))
            with pytest.raises(ValueError, match="non-finite"):
                getattr(q, probe)()


class TestReplicaEngineSingleStage:
    """Runs twice via the ``engine`` fixture: object and vectorized."""

    @pytest.fixture(autouse=True)
    def _select_engine(self, engine):
        self.engine = engine

    def _run(self, deployment, requests, scheduler=SchedulerKind.SARATHI, **cfg):
        config = ServingConfig(scheduler=scheduler, engine=self.engine, **cfg)
        engine = build_engine(deployment, config)
        return engine.run(requests)

    def test_empty_trace_rejected(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig(engine=self.engine))
        with pytest.raises(ValueError):
            engine.run([])

    def test_single_request_completes(self, tiny_deployment):
        r = make_request(prompt_len=100, output_len=5)
        result = self._run(tiny_deployment, [r])
        assert r.is_finished
        assert len(r.token_times) == 5
        assert result.makespan > 0
        assert not result.unfinished

    def test_all_requests_finish(self, tiny_deployment):
        requests = [
            make_request(prompt_len=64, output_len=4, arrival_time=0.01 * i)
            for i in range(20)
        ]
        result = self._run(tiny_deployment, requests)
        assert all(r.is_finished for r in result.requests)

    def test_token_times_monotone(self, tiny_deployment):
        requests = [
            make_request(prompt_len=200, output_len=10, arrival_time=0.05 * i)
            for i in range(10)
        ]
        self._run(tiny_deployment, requests)
        for r in requests:
            assert r.token_times == sorted(r.token_times)
            assert r.token_times[0] >= r.arrival_time

    def test_records_cover_all_work(self, tiny_deployment):
        requests = [make_request(prompt_len=128, output_len=4) for _ in range(4)]
        result = self._run(tiny_deployment, requests)
        total_prefill = sum(rec.num_prefill_tokens for rec in result.records)
        total_decode = sum(rec.num_decode_tokens for rec in result.records)
        assert total_prefill == sum(r.prompt_len for r in requests)
        # Each request decodes output_len - 1 tokens (first comes from prefill).
        assert total_decode == sum(r.output_len - 1 for r in requests)

    def test_records_non_overlapping_single_stage(self, tiny_deployment):
        requests = [make_request(prompt_len=128, output_len=6) for _ in range(6)]
        result = self._run(tiny_deployment, requests)
        records = sorted(result.records, key=lambda rec: rec.start)
        for prev, cur in zip(records, records[1:]):
            assert cur.start >= prev.end - 1e-12

    def test_max_time_cutoff_leaves_unfinished(self, tiny_deployment):
        requests = [make_request(prompt_len=2000, output_len=200) for _ in range(4)]
        config = ServingConfig(scheduler=SchedulerKind.SARATHI, engine=self.engine)
        engine = build_engine(tiny_deployment, config)
        result = engine.run(requests, max_time=0.05)
        assert result.unfinished

    def test_deterministic_replay(self, tiny_deployment):
        def run_once():
            trace = [
                make_request(prompt_len=100 + 10 * i, output_len=5, arrival_time=0.02 * i)
                for i in range(10)
            ]
            result = self._run(tiny_deployment, trace)
            return [r.finished_at for r in result.requests]

        assert run_once() == run_once()

    def test_determinism_via_simulate(self, tiny_deployment):
        trace = [
            make_request(prompt_len=100, output_len=5, arrival_time=0.02 * i)
            for i in range(10)
        ]
        config = ServingConfig(engine=self.engine)
        _, m1 = simulate(tiny_deployment, config, trace)
        _, m2 = simulate(tiny_deployment, config, trace)
        assert m1 == m2

    def test_arrival_order_respected(self, tiny_deployment):
        early = make_request(prompt_len=64, output_len=2, arrival_time=0.0)
        late = make_request(prompt_len=64, output_len=2, arrival_time=1.0)
        self._run(tiny_deployment, [late, early])
        assert early.first_token_at < late.first_token_at

    def test_vllm_and_ft_also_run_clean(self, tiny_deployment):
        for kind in (SchedulerKind.VLLM, SchedulerKind.FASTER_TRANSFORMER):
            requests = [
                make_request(prompt_len=100, output_len=4, arrival_time=0.01 * i)
                for i in range(8)
            ]
            result = self._run(tiny_deployment, requests, scheduler=kind)
            assert all(r.is_finished for r in result.requests)


class TestReplicaEnginePipeline:
    def test_vectorized_runs_pipeline_parallel(self, tiny_pp_deployment):
        # The vectorized core models multi-stage pipelines since §13;
        # a pp deployment must build and drain like the object engine.
        requests = [
            make_request(prompt_len=128, output_len=6, arrival_time=0.01 * i)
            for i in range(12)
        ]
        engine = build_engine(
            tiny_pp_deployment, ServingConfig(engine="vectorized")
        )
        result = engine.run(requests)
        assert all(r.is_finished for r in result.requests)
        assert result.num_stages == 2

    def test_pipeline_runs_all_requests(self, tiny_pp_deployment):
        requests = [
            make_request(prompt_len=128, output_len=6, arrival_time=0.01 * i)
            for i in range(12)
        ]
        engine = build_engine(tiny_pp_deployment, ServingConfig())
        result = engine.run(requests)
        assert all(r.is_finished for r in result.requests)
        assert result.num_stages == 2

    def test_both_stages_execute_every_batch(self, tiny_pp_deployment):
        requests = [make_request(prompt_len=128, output_len=4) for _ in range(4)]
        engine = build_engine(tiny_pp_deployment, ServingConfig())
        result = engine.run(requests)
        stage0 = [r for r in result.records if r.stage == 0]
        stage1 = [r for r in result.records if r.stage == 1]
        assert len(stage0) == len(stage1)
        assert {r.batch_id for r in stage0} == {r.batch_id for r in stage1}

    def test_stage1_starts_after_stage0_finishes(self, tiny_pp_deployment):
        requests = [make_request(prompt_len=128, output_len=4) for _ in range(4)]
        engine = build_engine(tiny_pp_deployment, ServingConfig())
        result = engine.run(requests)
        stage0_end = {r.batch_id: r.end for r in result.records if r.stage == 0}
        for rec in result.records:
            if rec.stage == 1:
                assert rec.start >= stage0_end[rec.batch_id] - 1e-12

    def test_micro_batches_overlap_across_stages(self, tiny_pp_deployment):
        """Pipelining: stage 0 works on batch i+1 while stage 1 runs batch i."""
        requests = [
            make_request(prompt_len=512, output_len=20, arrival_time=0.0)
            for _ in range(16)
        ]
        engine = build_engine(tiny_pp_deployment, ServingConfig())
        result = engine.run(requests)
        stage0 = sorted((r for r in result.records if r.stage == 0), key=lambda r: r.start)
        stage1 = {r.batch_id: r for r in result.records if r.stage == 1}
        overlapped = any(
            rec.start < stage1[prev.batch_id].end
            for prev, rec in zip(stage0, stage0[1:])
            if prev.batch_id in stage1 and stage1[prev.batch_id].start >= prev.end - 1e-12
        )
        assert overlapped

    def test_inflight_cap_respected(self, tiny_pp_deployment):
        engine = build_engine(
            tiny_pp_deployment, ServingConfig(max_inflight_batches=1)
        )
        requests = [make_request(prompt_len=128, output_len=4) for _ in range(6)]
        result = engine.run(requests)
        # With one batch in flight, stages never overlap across batches.
        records = sorted(result.records, key=lambda r: r.start)
        for prev, cur in zip(records, records[1:]):
            assert cur.start >= prev.end - 1e-9

    def test_invalid_inflight_cap(self, tiny_pp_deployment):
        with pytest.raises(ValueError):
            build_engine(tiny_pp_deployment, ServingConfig(max_inflight_batches=0))

    def test_request_never_in_two_inflight_batches(self, tiny_pp_deployment):
        """Iteration-level scheduling invariant under PP."""
        requests = [make_request(prompt_len=256, output_len=12) for _ in range(6)]
        engine = build_engine(tiny_pp_deployment, ServingConfig())

        live: dict[int, set[int]] = {}
        original_schedule = engine.scheduler.schedule
        original_complete = engine.scheduler.on_batch_complete
        violations = []

        def schedule(now):
            batch = original_schedule(now)
            if batch is not None:
                for item in batch.items:
                    rid = item.request.request_id
                    for members in live.values():
                        if rid in members:
                            violations.append(rid)
                    live.setdefault(batch.batch_id, set()).add(rid)
            return batch

        def complete(batch, now):
            live.pop(batch.batch_id, None)
            return original_complete(batch, now)

        engine.scheduler.schedule = schedule  # type: ignore[method-assign]
        engine.scheduler.on_batch_complete = complete  # type: ignore[method-assign]
        engine.run(requests)
        assert violations == []


class TestEngineConfigValidation:
    def test_invalid_swap_bandwidth_rejected(self, tiny_deployment):
        from repro.engine.replica import ReplicaEngine
        from repro.api import build_scheduler, ServingConfig

        scheduler = build_scheduler(tiny_deployment, ServingConfig())
        with pytest.raises(ValueError, match="swap_bandwidth"):
            ReplicaEngine(
                tiny_deployment.execution_model(), scheduler, swap_bandwidth=0
            )

    def test_invalid_preemption_mode_via_api(self, tiny_deployment):
        from repro.api import ServingConfig
        from repro.types import SchedulerKind

        # Validation moved to construction time: the typo fails where
        # it was written, not inside build_scheduler.
        with pytest.raises(ValueError, match="preemption_mode"):
            ServingConfig(scheduler=SchedulerKind.VLLM, preemption_mode="teleport")
