"""A third-party scheduler through the documented plug-in protocol.

The policy below lives in this test module — deliberately *outside*
``repro.scheduling`` — and touches only the documented surface:
:class:`repro.scheduling.SchedulingPolicy` (the batch-composition
hook), the optional ``admit`` admission hook, and
:func:`repro.scheduling.register_policy`.  If these tests break, the
public protocol broke.
"""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_scheduler, simulate
from repro.scheduling import (
    BatchDirective,
    PoolView,
    SchedulingPolicy,
    register_policy,
    registered_names,
    resolve,
    unregister,
)
from tests.conftest import make_request


class ToyShortestPromptPolicy(SchedulingPolicy):
    """Shortest-prompt-first with a chunk cap and a defer-once gate.

    Small enough to fit in a docstring, yet it exercises every hook:
    batch composition (ordering + chunking), and fleet admission
    (every request is deferred exactly once before being admitted).
    """

    name = "toy-shortest-prompt"

    def __init__(self, chunk_cap: int = 64, deferred: set[int] | None = None) -> None:
        self.chunk_cap = chunk_cap
        # Shared across replicas (each fleet replica builds its own
        # scheduler), so a request deferred by one replica is admitted
        # wherever its retry lands.
        self.deferred_once = set() if deferred is None else deferred

    def compose_batch(self, pool: PoolView) -> list[BatchDirective]:
        directives = [
            BatchDirective(r) for r in pool.decodes if r.is_prefill_complete
        ]
        prefills = sorted(
            [r for r in pool.runnable if not r.is_prefill_complete],
            key=lambda r: (r.prompt_len, r.arrival_time, r.request_id),
        )
        directives.extend(
            BatchDirective(r, chunk=min(self.chunk_cap, pool.token_budget))
            for r in prefills
        )
        return directives

    def admit(self, snapshot, request, now: float) -> bool:
        if request.request_id in self.deferred_once:
            return True
        self.deferred_once.add(request.request_id)
        return False


@pytest.fixture
def toy_registered():
    deferred: set[int] = set()
    register_policy(
        "toy_shortest_prompt",
        lambda ctx: ToyShortestPromptPolicy(deferred=deferred),
        description="test-only shortest-prompt-first plug-in",
    )
    try:
        yield "toy_shortest_prompt"
    finally:
        unregister("toy_shortest_prompt")


class TestToyPolicySimulate:
    def test_registers_and_resolves(self, toy_registered):
        assert toy_registered in registered_names()
        spec = resolve(toy_registered)
        assert not spec.supports_vectorized

    def test_runs_through_simulate(self, tiny_deployment, toy_registered):
        trace = [
            make_request(prompt_len=64 * (1 + i % 4), output_len=8, arrival_time=0.1 * i)
            for i in range(12)
        ]
        config = ServingConfig(scheduler=toy_registered, token_budget=256)
        result, metrics = simulate(tiny_deployment, config, trace)
        assert not result.unfinished
        assert all(r.is_finished for r in result.requests)
        assert metrics.p99_tbt > 0

    def test_policy_orders_prefills_shortest_first(self, tiny_deployment, toy_registered):
        scheduler = build_scheduler(
            tiny_deployment, ServingConfig(scheduler=toy_registered, token_budget=64)
        )
        assert scheduler.name == "toy-shortest-prompt"
        long = make_request(prompt_len=512, output_len=4)
        short = make_request(prompt_len=32, output_len=4)
        scheduler.add_request(long, now=0.0)
        scheduler.add_request(short, now=0.0)
        batch = scheduler.schedule(now=0.0)
        # 64-token budget: the short prompt (32 tokens) schedules first
        # and whole; the long one only gets the leftover 32-token chunk.
        assert [item.request.request_id for item in batch.items] == [
            short.request_id,
            long.request_id,
        ]
        assert batch.items[0].work.num_tokens == 32
        assert batch.items[1].work.num_tokens == 32
        assert batch.num_tokens == 64

    def test_unregister_restores_unknown_error(self, tiny_deployment):
        register_policy(
            "toy_transient",
            lambda ctx: ToyShortestPromptPolicy(),
            description="transient",
        )
        unregister("toy_transient")
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_scheduler(
                tiny_deployment, ServingConfig(scheduler="toy_transient")
            )


class TestToyPolicyFleet:
    def test_admission_hook_defers_then_admits(self, tiny_deployment, toy_registered):
        from repro.cluster.fleet import FleetConfig, simulate_fleet

        trace = [
            make_request(prompt_len=96, output_len=6, arrival_time=0.2 * i)
            for i in range(10)
        ]
        config = ServingConfig(scheduler=toy_registered, token_budget=256)
        result, _ = simulate_fleet(
            tiny_deployment, config, trace, FleetConfig(num_replicas=2)
        )
        # Every request was deferred exactly once by the policy's
        # admission hook, then admitted on the backoff retry.
        deferrals = [
            e for e in result.events if e.kind == "reject" and e.reason == "policy_deferred"
        ]
        assert len(deferrals) == len(trace)
        assert result.num_rejections == len(trace)
        assert result.num_shed == 0
        assert not result.merged().unfinished

    def test_vectorized_engine_fails_loudly(self, tiny_deployment, toy_registered):
        from repro.api import build_vectorized_scheduler

        with pytest.raises(ValueError, match="vectorized engine does not support"):
            build_vectorized_scheduler(
                tiny_deployment,
                ServingConfig(scheduler=toy_registered, engine="vectorized"),
            )
