"""Tests for the profiled iteration-cost table (Vidur-style oracle)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicSarathiScheduler
from repro.memory.block_manager import PagedBlockManager
from repro.perf.table import ProfiledIterationTable
from repro.types import TokenWork

from tests.conftest import make_request


@pytest.fixture(scope="module")
def table_and_model():
    from repro.api import Deployment
    from repro.hardware.catalog import A100_80G
    from repro.models.catalog import TINY_1B

    deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    exec_model = deployment.execution_model()
    return ProfiledIterationTable.build(exec_model), exec_model


class TestConstruction:
    def test_grid_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            ProfiledIterationTable([1], [1, 2], [0, 1], np.zeros((1, 2, 2)))
        with pytest.raises(ValueError, match="increasing"):
            ProfiledIterationTable([2, 1], [1, 2], [0, 1], np.zeros((2, 2, 2)))
        with pytest.raises(ValueError, match="shape"):
            ProfiledIterationTable([1, 2], [1, 2], [0, 1], np.zeros((3, 2, 2)))

    def test_build_fills_table(self, table_and_model):
        table, _ = table_and_model
        assert table.num_entries > 0
        # The all-zero corner (no decodes, no prefill) is an empty batch.
        assert table.table[0, 0, 0] == 0.0
        assert table.table[-1, -1, -1] > 0.0


class TestPrediction:
    def test_empty_batch_is_free(self, table_and_model):
        table, _ = table_and_model
        assert table.predict([]) == 0.0

    def test_grid_points_exact(self, table_and_model):
        table, exec_model = table_and_model
        works = [TokenWork.decode(512) for _ in range(16)]
        works.append(TokenWork.prefill_chunk(1024, past_len=1024, is_last=False))
        exact = exec_model.iteration_time(works).total
        assert table.predict(works) == pytest.approx(exact, rel=0.02)

    @pytest.mark.parametrize(
        "num_decodes,context,chunk",
        [(3, 300, 200), (10, 1000, 700), (40, 3000, 1500), (100, 6000, 3000)],
    )
    def test_interpolation_accuracy(self, table_and_model, num_decodes, context, chunk):
        """Off-grid predictions stay within ~15% of the exact model."""
        table, exec_model = table_and_model
        works = [TokenWork.decode(context) for _ in range(num_decodes)]
        works.append(TokenWork.prefill_chunk(chunk, past_len=chunk, is_last=False))
        exact = exec_model.iteration_time(works).total
        assert table.predict(works) == pytest.approx(exact, rel=0.15)

    def test_clamps_beyond_grid(self, table_and_model):
        table, _ = table_and_model
        inside = table.predict([TokenWork.decode(8192)])
        beyond = table.predict([TokenWork.decode(100_000)])
        assert beyond == pytest.approx(inside)

    def test_monotone_in_prefill_tokens(self, table_and_model):
        table, _ = table_and_model
        small = table.predict([TokenWork.prefill_chunk(256)])
        large = table.predict([TokenWork.prefill_chunk(4096)])
        assert large > small


class TestAsDynamicOracle:
    def test_drives_dynamic_scheduler(self, table_and_model):
        table, exec_model = table_and_model
        memory = PagedBlockManager(65536, block_size=16, watermark=0.0)
        scheduler = DynamicSarathiScheduler(
            memory,
            tbt_slo=0.05,
            iteration_cost=table.as_cost_fn(),
            max_budget=8192,
        )
        scheduler.add_request(make_request(prompt_len=20_000, output_len=2), now=0.0)
        batch = scheduler.schedule(now=0.0)
        assert batch is not None
        chosen = scheduler.budget_history[-1]
        # The chosen budget's predicted iteration honors the SLO.
        works = [
            TokenWork.prefill_chunk(chosen, past_len=chosen, is_last=False)
        ]
        assert table.predict(works) <= 0.05 * 1.05
