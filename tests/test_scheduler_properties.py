"""Property-based tests on scheduler policies under random workloads.

Complements ``test_properties.py`` (which covers Sarathi): the same
conservation and safety laws must hold for every baseline policy,
for the fairness variant, and for the disaggregated engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import FairSarathiScheduler
from repro.memory.block_manager import PagedBlockManager, ReservationManager
from repro.scheduling.faster_transformer import FasterTransformerScheduler
from repro.scheduling.orca import OrcaScheduler
from repro.scheduling.registry import registered_names
from repro.scheduling.vllm import VLLMScheduler
from repro.types import Request

request_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=500),   # prompt
        st.integers(min_value=1, max_value=15),    # output
        st.integers(min_value=0, max_value=3),     # client
    ),
    min_size=1,
    max_size=12,
)


def drive(scheduler, requests, max_iters=30_000):
    """Run schedule/complete rounds to completion; return batches."""
    for r in requests:
        scheduler.add_request(r, now=0.0)
    now = 0.0
    batches = []
    for _ in range(max_iters):
        batch = scheduler.schedule(now)
        if batch is None:
            if not scheduler.has_work:
                return batches
            now += 0.01
            continue
        batches.append(batch)
        now += 0.01
        scheduler.on_batch_complete(batch, now)
    raise AssertionError("scheduler did not converge")


def check_conservation(requests):
    for r in requests:
        assert r.is_finished
        assert r.num_emitted == r.output_len
        assert len(r.token_times) == r.output_len
        assert r.token_times == sorted(r.token_times)


@given(specs=request_specs)
@settings(max_examples=30, deadline=None)
def test_vllm_random_workloads_complete(specs):
    scheduler = VLLMScheduler(PagedBlockManager(65536, watermark=0.0))
    requests = [Request(prompt_len=p, output_len=o) for p, o, _ in specs]
    batches = drive(scheduler, requests)
    check_conservation(requests)
    # Algorithm 2 invariant: batches are never hybrid.
    assert not any(b.is_hybrid for b in batches)
    # All memory returned.
    assert scheduler.memory.free_blocks == scheduler.memory.num_blocks


@given(specs=request_specs)
@settings(max_examples=30, deadline=None)
def test_orca_random_workloads_complete(specs):
    scheduler = OrcaScheduler(ReservationManager(65536, reserve_len=1024))
    requests = [Request(prompt_len=p, output_len=o) for p, o, _ in specs]
    batches = drive(scheduler, requests)
    check_conservation(requests)
    # Orca never chunks: every prefill work covers a whole prompt.
    for batch in batches:
        for item in batch.items:
            if item.work.is_prefill:
                assert item.work.emits_token
    assert scheduler.memory.free_token_slots == 65536


@given(specs=request_specs)
@settings(max_examples=30, deadline=None)
def test_faster_transformer_random_workloads_complete(specs):
    scheduler = FasterTransformerScheduler(
        ReservationManager(65536, reserve_len=1024), max_batch_size=4
    )
    requests = [Request(prompt_len=p, output_len=o) for p, o, _ in specs]
    batches = drive(scheduler, requests)
    check_conservation(requests)
    # Request-level batching: no batch mixes prefills and decodes.
    assert not any(b.is_hybrid for b in batches)


@given(specs=request_specs, budget=st.sampled_from([64, 256]))
@settings(max_examples=30, deadline=None)
def test_fair_sarathi_random_workloads_complete(specs, budget):
    scheduler = FairSarathiScheduler(
        PagedBlockManager(65536, watermark=0.0), token_budget=budget
    )
    requests = [
        Request(prompt_len=p, output_len=o, client_id=c) for p, o, c in specs
    ]
    batches = drive(scheduler, requests)
    check_conservation(requests)
    for batch in batches:
        assert batch.num_tokens <= budget
    # Service counters account for every token scheduled.
    assert sum(scheduler.service_counters.values()) == sum(
        b.num_tokens for b in batches
    )


@given(specs=request_specs)
@settings(max_examples=20, deadline=None)
def test_vllm_swap_mode_random_workloads_complete(specs):
    scheduler = VLLMScheduler(
        PagedBlockManager(4096, watermark=0.0),
        preemption_mode="swap",
        kv_bytes_per_token=256,
    )
    requests = [Request(prompt_len=p, output_len=o) for p, o, _ in specs]
    drive(scheduler, requests)
    check_conservation(requests)
    # Swap bookkeeping balances: everything parked came back.
    assert not scheduler.swapped
    assert scheduler.num_swap_ins == scheduler.num_swap_outs
    assert scheduler.memory.free_blocks == scheduler.memory.num_blocks


@pytest.mark.parametrize("name", registered_names())
@given(specs=request_specs)
@settings(max_examples=10, deadline=None)
def test_every_registered_scheduler_conserves_tokens(name, specs):
    """The conservation laws hold for *whatever* the registry holds.

    Built through the real ``build_scheduler`` path (registry factory,
    declared memory family, config plumbing), so plug-in policies are
    held to the same contract as the paper's baselines.
    """
    from repro.api import Deployment, ServingConfig, build_scheduler
    from repro.hardware.catalog import A100_80G
    from repro.models.catalog import TINY_1B

    deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    scheduler = build_scheduler(
        deployment,
        ServingConfig(scheduler=name, token_budget=256, reserve_len=1024),
    )
    requests = [
        Request(prompt_len=p, output_len=o, client_id=c) for p, o, c in specs
    ]
    batches = drive(scheduler, requests)
    check_conservation(requests)
    # Total scheduled tokens account for every prompt and output token
    # exactly once (recompute-free traces: no preemption inflation).
    if scheduler.num_preemptions == 0:
        total = sum(b.num_tokens for b in batches)
        assert total == sum(r.prompt_len + r.output_len - 1 for r in requests)


@given(specs=request_specs)
@settings(max_examples=15, deadline=None)
def test_disaggregated_engine_random_workloads_complete(specs):
    from repro.api import Deployment
    from repro.disagg.engine import DisaggregatedEngine
    from repro.hardware.catalog import A100_80G, NVLINK
    from repro.models.catalog import TINY_1B

    deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    engine = DisaggregatedEngine(
        deployment.execution_model(),
        num_prefill_replicas=1,
        num_decode_replicas=1,
        migration_link=NVLINK,
        decode_kv_capacity=deployment.kv_capacity_tokens(),
    )
    requests = [Request(prompt_len=p, output_len=o) for p, o, _ in specs]
    result = engine.run(requests)
    check_conservation(requests)
    # One migration per request that decodes at least once.
    expected = sum(1 for r in requests if r.output_len > 1)
    assert engine.num_migrations == expected
    assert not result.unfinished
