"""Tests for workload synthesis: distributions, arrivals, datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.arrival import (
    GammaArrivals,
    PoissonArrivals,
    StaticArrivals,
    UniformArrivals,
)
from repro.workload.datasets import (
    ARXIV_SUMMARIZATION,
    SHAREGPT4,
    generate_requests,
    get_dataset,
)
from repro.workload.distributions import (
    FixedLengths,
    LogNormalLengths,
    UniformLengths,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLogNormalLengths:
    def test_fit_recovers_median_and_p90(self, rng):
        dist = LogNormalLengths(median=1730, p90=5696)
        samples = dist.sample_many(rng, 20_000)
        assert np.median(samples) == pytest.approx(1730, rel=0.05)
        assert np.percentile(samples, 90) == pytest.approx(5696, rel=0.08)

    def test_bounds_respected(self, rng):
        dist = LogNormalLengths(median=100, p90=400, min_len=50, max_len=500)
        samples = dist.sample_many(rng, 2000)
        assert min(samples) >= 50
        assert max(samples) <= 500

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogNormalLengths(median=0, p90=10)
        with pytest.raises(ValueError):
            LogNormalLengths(median=100, p90=50)
        with pytest.raises(ValueError):
            LogNormalLengths(median=10, p90=20, min_len=0)
        with pytest.raises(ValueError):
            LogNormalLengths(median=10, p90=20, min_len=5, max_len=4)

    def test_samples_are_positive_ints(self, rng):
        dist = LogNormalLengths(median=10, p90=40)
        for _ in range(100):
            s = dist.sample(rng)
            assert isinstance(s, int) and s >= 1


class TestSimpleDistributions:
    def test_fixed(self, rng):
        assert FixedLengths(7).sample(rng) == 7
        with pytest.raises(ValueError):
            FixedLengths(0)

    def test_uniform(self, rng):
        dist = UniformLengths(10, 20)
        samples = dist.sample_many(rng, 500)
        assert min(samples) >= 10 and max(samples) <= 20
        assert len(set(samples)) > 5
        with pytest.raises(ValueError):
            UniformLengths(20, 10)


class TestArrivals:
    def test_poisson_rate(self, rng):
        times = PoissonArrivals(qps=10.0).arrival_times(rng, 5000)
        assert times[-1] == pytest.approx(500, rel=0.1)
        assert times == sorted(times)

    def test_gamma_cv1_matches_poisson_rate(self, rng):
        times = GammaArrivals(qps=10.0, cv=1.0).arrival_times(rng, 5000)
        assert times[-1] == pytest.approx(500, rel=0.1)

    def test_gamma_burstiness(self, rng):
        bursty = GammaArrivals(qps=10.0, cv=3.0).arrival_times(rng, 5000)
        smooth = GammaArrivals(qps=10.0, cv=0.3).arrival_times(rng, 5000)
        bursty_gaps = np.diff([0] + bursty)
        smooth_gaps = np.diff([0] + smooth)
        assert np.std(bursty_gaps) > 5 * np.std(smooth_gaps)

    def test_uniform_spacing(self, rng):
        times = UniformArrivals(qps=4.0).arrival_times(rng, 4)
        assert times == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_static_all_zero(self, rng):
        assert StaticArrivals().arrival_times(rng, 3) == [0.0, 0.0, 0.0]

    @pytest.mark.parametrize("cls", [PoissonArrivals, UniformArrivals])
    def test_invalid_qps_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(qps=0)

    def test_invalid_gamma_cv_rejected(self):
        with pytest.raises(ValueError):
            GammaArrivals(qps=1, cv=0)


class TestDatasets:
    def test_lookup(self):
        assert get_dataset("openchat_sharegpt4") is SHAREGPT4
        assert get_dataset("ARXIV_SUMMARIZATION") is ARXIV_SUMMARIZATION
        with pytest.raises(KeyError):
            get_dataset("c4")

    def test_table2_statistics_sharegpt(self):
        """Prompt/output medians should match Table 2 within tolerance."""
        requests = generate_requests(SHAREGPT4, num_requests=5000, seed=7)
        prompts = [r.prompt_len for r in requests]
        outputs = [r.output_len for r in requests]
        # Filtering trims the upper tail, so medians land slightly low.
        assert np.median(prompts) == pytest.approx(1730, rel=0.15)
        assert np.median(outputs) == pytest.approx(415, rel=0.15)

    def test_table2_statistics_arxiv(self):
        requests = generate_requests(ARXIV_SUMMARIZATION, num_requests=5000, seed=7)
        prompts = [r.prompt_len for r in requests]
        outputs = [r.output_len for r in requests]
        assert np.median(prompts) == pytest.approx(7059, rel=0.15)
        assert np.median(outputs) == pytest.approx(208, rel=0.15)
        # Arxiv prompts are much longer than sharegpt's.
        assert np.median(prompts) > 3 * 1730

    def test_total_length_cap_enforced(self):
        for dataset in (SHAREGPT4, ARXIV_SUMMARIZATION):
            requests = generate_requests(dataset, num_requests=2000, seed=3)
            assert all(r.total_len <= dataset.max_total_len for r in requests)

    def test_seed_reproducibility(self):
        a = generate_requests(SHAREGPT4, num_requests=50, qps=1.0, seed=11)
        b = generate_requests(SHAREGPT4, num_requests=50, qps=1.0, seed=11)
        assert [(r.prompt_len, r.output_len, r.arrival_time) for r in a] == [
            (r.prompt_len, r.output_len, r.arrival_time) for r in b
        ]

    def test_different_seeds_differ(self):
        a = generate_requests(SHAREGPT4, num_requests=50, qps=1.0, seed=1)
        b = generate_requests(SHAREGPT4, num_requests=50, qps=1.0, seed=2)
        assert [r.prompt_len for r in a] != [r.prompt_len for r in b]

    def test_qps_and_arrivals_mutually_exclusive(self):
        with pytest.raises(ValueError):
            generate_requests(
                SHAREGPT4, num_requests=10, qps=1.0, arrivals=StaticArrivals()
            )

    def test_default_is_closed_loop(self):
        requests = generate_requests(SHAREGPT4, num_requests=10, seed=0)
        assert all(r.arrival_time == 0.0 for r in requests)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            generate_requests(SHAREGPT4, num_requests=0)
