"""Tests for the model catalog and architecture accounting."""

from __future__ import annotations

import pytest

from repro.models.catalog import (
    FALCON_180B,
    LLAMA2_70B,
    MISTRAL_7B,
    TINY_1B,
    YI_34B,
    get_model,
    list_models,
    register_model,
)
from repro.models.config import Activation, ModelConfig


class TestCatalog:
    def test_lookup_case_insensitive(self):
        assert get_model("mistral-7b") is MISTRAL_7B
        assert get_model("MISTRAL-7B") is MISTRAL_7B

    def test_unknown_model_raises_with_known_names(self):
        with pytest.raises(KeyError, match="Mistral-7B"):
            get_model("gpt-5")

    def test_list_models_contains_all_paper_models(self):
        names = list_models()
        for expected in ("Mistral-7B", "Yi-34B", "LLaMA2-70B", "Falcon-180B"):
            assert expected in names

    def test_register_custom_model(self):
        custom = ModelConfig(
            name="Custom-2B",
            num_layers=8,
            hidden_size=1024,
            num_heads=8,
            num_kv_heads=8,
            ffn_size=4096,
            vocab_size=1000,
        )
        register_model(custom)
        assert get_model("custom-2b") is custom


class TestParameterCounts:
    """Total parameter counts should land near the models' nameplates."""

    @pytest.mark.parametrize(
        "model,expected_billions,tolerance",
        [
            (MISTRAL_7B, 7.2, 0.08),
            (YI_34B, 34.4, 0.08),
            (LLAMA2_70B, 69.0, 0.08),
            (FALCON_180B, 179.0, 0.08),
        ],
    )
    def test_total_params_near_nameplate(self, model, expected_billions, tolerance):
        actual = model.total_params / 1e9
        assert abs(actual - expected_billions) / expected_billions < tolerance

    def test_weight_bytes_are_two_per_param(self):
        assert MISTRAL_7B.weight_bytes == 2 * MISTRAL_7B.total_params


class TestHeadGeometry:
    def test_mistral_gqa_layout(self):
        assert MISTRAL_7B.head_dim == 128
        assert MISTRAL_7B.kv_dim == 1024
        assert MISTRAL_7B.gqa_group_size == 4

    def test_falcon_extreme_gqa(self):
        assert FALCON_180B.head_dim == 64
        assert FALCON_180B.gqa_group_size == 29

    def test_invalid_head_divisibility_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad",
                num_layers=2,
                hidden_size=100,
                num_heads=3,
                num_kv_heads=1,
                ffn_size=400,
                vocab_size=10,
            )

    def test_invalid_kv_head_divisibility_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad",
                num_layers=2,
                hidden_size=128,
                num_heads=8,
                num_kv_heads=3,
                ffn_size=512,
                vocab_size=10,
            )


class TestKVAccounting:
    def test_kv_bytes_per_token_formula(self):
        # 2 (K,V) * kv_dim * dtype per layer.
        per_layer = 2 * MISTRAL_7B.kv_dim * 2
        assert MISTRAL_7B.kv_bytes_per_token_per_layer == per_layer
        assert MISTRAL_7B.kv_bytes_per_token == per_layer * MISTRAL_7B.num_layers

    def test_gqa_shrinks_kv_cache(self):
        mha_like = ModelConfig(
            name="mha",
            num_layers=32,
            hidden_size=4096,
            num_heads=32,
            num_kv_heads=32,
            ffn_size=14336,
            vocab_size=32000,
        )
        assert MISTRAL_7B.kv_bytes_per_token * 4 == mha_like.kv_bytes_per_token

    def test_kv_bytes_scales_linearly(self):
        assert YI_34B.kv_bytes(100) == 100 * YI_34B.kv_bytes_per_token


class TestFlopAccounting:
    def test_linear_flops_scale_with_tokens(self):
        assert MISTRAL_7B.linear_flops(200) == pytest.approx(
            2 * MISTRAL_7B.linear_flops(100), rel=1e-12
        )

    def test_flops_per_token_near_2x_params(self):
        # The classic 2·params estimate, within the LM-head correction.
        ratio = MISTRAL_7B.flops_per_token() / (2 * MISTRAL_7B.total_params)
        assert 0.9 < ratio < 1.1

    def test_attention_flops_quadratic_growth(self):
        short = MISTRAL_7B.attention_flops(512, past_len=0)
        long = MISTRAL_7B.attention_flops(1024, past_len=0)
        # Causal attention pairs grow ~quadratically: 4x for 2x tokens.
        assert 3.5 < long / short < 4.5

    def test_attention_flops_with_past(self):
        # A chunk attending to a cached past does strictly more work.
        without = MISTRAL_7B.attention_flops(256, past_len=0)
        with_past = MISTRAL_7B.attention_flops(256, past_len=1024)
        assert with_past > without

    def test_sliding_window_caps_attention(self):
        # Mistral's 4096-token window: at huge contexts the per-chunk
        # cost stops growing.
        a = MISTRAL_7B.attention_flops(1, past_len=4096)
        b = MISTRAL_7B.attention_flops(1, past_len=40960)
        assert a == b

    def test_sliding_window_caps_kv_reads(self):
        a = MISTRAL_7B.attention_kv_read_bytes(1, past_len=4096)
        b = MISTRAL_7B.attention_kv_read_bytes(1, past_len=40960)
        assert a == b

    def test_no_window_means_unbounded_growth(self):
        a = YI_34B.attention_flops(1, past_len=4096)
        b = YI_34B.attention_flops(1, past_len=8192)
        assert b > a


class TestActivation:
    def test_swiglu_is_gated(self):
        assert Activation.SWIGLU.is_gated
        assert not Activation.GELU.is_gated

    def test_gated_ffn_has_three_matrices(self):
        gated = TINY_1B.ffn_params_per_layer
        ungated = ModelConfig(
            name="ungated",
            num_layers=TINY_1B.num_layers,
            hidden_size=TINY_1B.hidden_size,
            num_heads=TINY_1B.num_heads,
            num_kv_heads=TINY_1B.num_kv_heads,
            ffn_size=TINY_1B.ffn_size,
            vocab_size=TINY_1B.vocab_size,
            activation=Activation.GELU,
        ).ffn_params_per_layer
        assert gated == pytest.approx(1.5 * ungated)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad-dtype",
                num_layers=2,
                hidden_size=128,
                num_heads=8,
                num_kv_heads=8,
                ffn_size=512,
                vocab_size=10,
                dtype_bytes=3,
            )
