"""Tests for the persistent perf cache (``repro.perf.disk_cache``).

The store must round-trip snapshots *exactly* (pickle preserves float
bits), key them by configuration fingerprint, merge by union, and
degrade to a cold start — never an error — on missing, corrupt or
version-skewed files.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Deployment, ServingConfig, execution_model_for, simulate
from repro.hardware.catalog import A100_80G, A40_48G
from repro.models.catalog import TINY_1B
from repro.perf.cache import (
    SNAPSHOT_VERSION,
    CachedExecutionModel,
    CacheSnapshot,
    execution_fingerprint,
)
from repro.perf.disk_cache import FILE_MAGIC, PersistentPerfCache
from repro.workload.datasets import SHAREGPT4, generate_requests

FP = "a" * 20

floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
work_keys = st.tuples(
    st.integers(0, 1 << 14), st.integers(0, 1 << 14), st.booleans()
)


def snapshots(fingerprint: str = FP):
    """Snapshots with random work/token tiers (exact-value payloads)."""
    return st.builds(
        CacheSnapshot,
        fingerprint=st.just(fingerprint),
        work=st.dictionaries(work_keys, floats, max_size=24),
        token=st.dictionaries(
            st.integers(0, 1 << 12), st.tuples(floats, floats), max_size=12
        ),
    )


def warmed_model(deployment: Deployment) -> CachedExecutionModel:
    """A cached model populated by an actual simulation."""
    config = ServingConfig(token_budget=256)
    model = execution_model_for(deployment, config)
    trace = generate_requests(SHAREGPT4, num_requests=8, qps=1.0, seed=3)
    simulate(deployment, config, trace, exec_model=model)
    assert model.num_entries > 0
    return model


class TestRoundTrip:
    @given(snapshot=snapshots())
    @settings(max_examples=25, deadline=None)
    def test_save_load_is_exact(self, tmp_path_factory, snapshot):
        cache = PersistentPerfCache(tmp_path_factory.mktemp("perf"))
        cache.merge(snapshot)
        loaded = cache.load(snapshot.fingerprint)
        # Bit-exact: == on floats, no tolerance.
        assert loaded == snapshot

    @given(first=snapshots(), second=snapshots())
    @settings(max_examples=25, deadline=None)
    def test_merge_is_union(self, tmp_path_factory, first, second):
        cache = PersistentPerfCache(tmp_path_factory.mktemp("perf"))
        cache.merge(first)
        cache.merge(second)
        loaded = cache.load(FP)
        assert set(loaded.work) == set(first.work) | set(second.work)
        assert set(loaded.token) == set(first.token) | set(second.token)
        for key, value in second.work.items():
            assert loaded.work[key] == value  # later merge wins overlaps

    def test_model_warm_restores_every_entry(self, tmp_path, tiny_deployment):
        model = warmed_model(tiny_deployment)
        cache = PersistentPerfCache(tmp_path)
        assert cache.persist(model) == model.num_entries

        fresh = execution_model_for(tiny_deployment, ServingConfig(token_budget=256))
        assert cache.warm(fresh) == model.num_entries
        assert fresh.export_snapshot() == model.export_snapshot()


class TestFingerprints:
    def test_distinct_configurations_distinct_fingerprints(self):
        a100 = Deployment(model=TINY_1B, gpu=A100_80G).execution_model()
        a40 = Deployment(model=TINY_1B, gpu=A40_48G).execution_model()
        fp_a100 = execution_fingerprint(
            a100.model, a100.gpu, a100.parallel, a100.calibration
        )
        fp_a40 = execution_fingerprint(
            a40.model, a40.gpu, a40.parallel, a40.calibration
        )
        assert fp_a100 != fp_a40
        # Stable across calls (it keys files on disk).
        assert fp_a100 == execution_fingerprint(
            a100.model, a100.gpu, a100.parallel, a100.calibration
        )

    def test_stores_are_segregated_by_fingerprint(self, tmp_path):
        cache = PersistentPerfCache(tmp_path)
        cache.merge(CacheSnapshot(fingerprint="b" * 20, work={(1, 2, True): 3.0}))
        assert cache.load(FP) is None
        assert sorted(cache.fingerprints()) == ["b" * 20]

    def test_model_rejects_foreign_snapshot(self, tiny_deployment):
        model = CachedExecutionModel(tiny_deployment.execution_model())
        with pytest.raises(ValueError, match="fingerprint"):
            model.load_snapshot(CacheSnapshot(fingerprint=FP))


class TestMergeLock:
    def test_lock_released_after_merge(self, tmp_path):
        cache = PersistentPerfCache(tmp_path)
        cache.merge(CacheSnapshot(fingerprint=FP, work={(1, 1, True): 2.0}))
        assert not cache.lock_path_for(FP).exists()

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        import os

        cache = PersistentPerfCache(tmp_path)
        lock = cache.lock_path_for(FP)
        lock.touch()
        # Age the lock past the stale threshold: its holder "crashed".
        old = 10_000.0
        os.utime(lock, (old, old))
        snapshot = CacheSnapshot(fingerprint=FP, work={(1, 1, True): 2.0})
        cache.merge(snapshot)  # must not wait out LOCK_TIMEOUT
        assert cache.load(FP) == snapshot
        assert not lock.exists()

    def test_held_lock_times_out_to_unlocked_merge(self, tmp_path, monkeypatch):
        import repro.perf.disk_cache as disk_cache

        monkeypatch.setattr(disk_cache, "LOCK_TIMEOUT", 0.05)
        cache = PersistentPerfCache(tmp_path)
        lock = cache.lock_path_for(FP)
        lock.touch()  # a live holder that never releases
        snapshot = CacheSnapshot(fingerprint=FP, work={(2, 2, False): 4.0})
        cache.merge(snapshot)  # degrades to unlocked, never deadlocks
        assert cache.load(FP) == snapshot
        assert lock.exists()  # the foreign lock is not ours to remove
        lock.unlink()

    def test_concurrent_merges_lose_no_entries(self, tmp_path):
        """The lost-update drill: disjoint merges from many threads."""
        from concurrent.futures import ThreadPoolExecutor

        cache = PersistentPerfCache(tmp_path)
        snapshots = [
            CacheSnapshot(fingerprint=FP, work={(i, i, True): float(i)})
            for i in range(16)
        ]
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(cache.merge, snapshots))
        loaded = cache.load(FP)
        assert set(loaded.work) == {(i, i, True) for i in range(16)}


class TestColdStartOnBadFiles:
    def test_missing_file(self, tmp_path):
        assert PersistentPerfCache(tmp_path).load(FP) is None

    def test_corrupt_file(self, tmp_path):
        cache = PersistentPerfCache(tmp_path)
        cache.path_for(FP).write_bytes(b"not a pickle")
        assert cache.load(FP) is None
        # And a merge over the corrupt file replaces it cleanly.
        snapshot = CacheSnapshot(fingerprint=FP, work={(1, 1, False): 2.0})
        cache.merge(snapshot)
        assert cache.load(FP) == snapshot

    def test_version_skew(self, tmp_path):
        cache = PersistentPerfCache(tmp_path)
        stale = CacheSnapshot(fingerprint=FP, version=SNAPSHOT_VERSION + 1)
        with cache.path_for(FP).open("wb") as fh:
            pickle.dump({"magic": FILE_MAGIC, "snapshot": stale}, fh)
        assert cache.load(FP) is None

    def test_wrong_magic(self, tmp_path):
        cache = PersistentPerfCache(tmp_path)
        payload = {"magic": "something-else", "snapshot": CacheSnapshot(fingerprint=FP)}
        with cache.path_for(FP).open("wb") as fh:
            pickle.dump(payload, fh)
        assert cache.load(FP) is None
