"""Tests for multi-round conversation workloads and the followup hook."""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_engine
from repro.types import Request
from repro.workload.conversation import (
    ConversationSpec,
    ConversationWorkload,
    simulate_conversations,
)
from repro.workload.distributions import FixedLengths

from tests.conftest import make_request


def small_spec(**overrides) -> ConversationSpec:
    defaults = dict(
        num_conversations=5,
        first_turn_lengths=FixedLengths(100),
        followup_turn_lengths=FixedLengths(50),
        response_lengths=FixedLengths(10),
        mean_rounds=3.0,
        mean_think_time=0.5,
        arrival_qps=2.0,
    )
    defaults.update(overrides)
    return ConversationSpec(**defaults)


class TestConversationSpec:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_conversations", 0),
            ("mean_rounds", 0.5),
            ("mean_think_time", -1.0),
            ("arrival_qps", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            small_spec(**{field: value})


class TestConversationWorkload:
    def test_initial_requests_poisson_spaced(self):
        workload = ConversationWorkload(small_spec(), seed=1)
        requests = workload.initial_requests()
        assert len(requests) == 5
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(r.prompt_len == 100 for r in requests)

    def test_followup_grows_context(self):
        workload = ConversationWorkload(small_spec(mean_rounds=10.0), seed=2)
        first = workload.initial_requests()[0]
        first.record_prefill(first.prompt_len, now=1.0)
        while not first.is_finished:
            first.record_decode(now=2.0)
        followups = workload.followup(first, now=2.0)
        if followups:  # geometric rounds can stop after one
            nxt = followups[0]
            # Next prompt = prior context (100 + 10) + new 50-token turn.
            assert nxt.prompt_len == 160
            assert nxt.arrival_time >= 2.0

    def test_unknown_request_yields_nothing(self):
        workload = ConversationWorkload(small_spec(), seed=0)
        workload.initial_requests()
        stranger = make_request()
        assert workload.followup(stranger, now=1.0) == []

    def test_round_budget_respected(self):
        spec = small_spec(mean_rounds=1.0)  # geometric(1.0) == exactly 1 round
        workload = ConversationWorkload(spec, seed=0)
        requests = workload.initial_requests()
        for request in requests:
            request.record_prefill(request.prompt_len, now=1.0)
            while not request.is_finished:
                request.record_decode(now=1.5)
            assert workload.followup(request, now=1.5) == []

    def test_context_cap_stops_conversation(self):
        spec = small_spec(
            first_turn_lengths=FixedLengths(4400),
            response_lengths=FixedLengths(200),
            max_context=4500,
            mean_rounds=50.0,
        )
        workload = ConversationWorkload(spec, seed=0)
        request = workload.initial_requests()[0]
        request.record_prefill(request.prompt_len, now=1.0)
        while not request.is_finished:
            request.record_decode(now=1.5)
        assert workload.followup(request, now=1.5) == []


class TestEngineFollowupHook:
    def test_followups_are_simulated(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        root = make_request(prompt_len=64, output_len=2)

        def one_followup(request: Request, now: float) -> list[Request]:
            if request is root:
                return [Request(prompt_len=32, output_len=2, arrival_time=now + 0.5)]
            return []

        result = engine.run([root], followup_fn=one_followup)
        assert len(result.requests) == 2
        assert all(r.is_finished for r in result.requests)
        child = result.requests[1]
        assert child.arrival_time >= root.finished_at

    def test_past_arrival_rejected(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        root = make_request(prompt_len=64, output_len=2)

        def bad_followup(request, now):
            return [Request(prompt_len=32, output_len=2, arrival_time=now - 5.0)]

        with pytest.raises(ValueError, match="past"):
            engine.run([root], followup_fn=bad_followup)

    def test_no_hook_means_no_extras(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        result = engine.run([make_request(prompt_len=64, output_len=2)])
        assert len(result.requests) == 1


class TestSimulateConversations:
    def test_end_to_end(self, tiny_deployment):
        spec = small_spec(num_conversations=8, mean_rounds=2.0)
        result, metrics = simulate_conversations(
            tiny_deployment, ServingConfig(token_budget=128), spec, seed=4
        )
        # At least the initial rounds ran; geometric rounds add more.
        assert metrics.num_requests >= 8
        assert all(r.is_finished for r in result.requests)

    def test_seed_reproducible_request_count(self, tiny_deployment):
        spec = small_spec(num_conversations=6)
        _, a = simulate_conversations(tiny_deployment, ServingConfig(), spec, seed=7)
        _, b = simulate_conversations(tiny_deployment, ServingConfig(), spec, seed=7)
        assert a.num_requests == b.num_requests
        assert a.median_ttft == pytest.approx(b.median_ttft)


class TestFollowupUnderPipelineParallelism:
    def test_conversations_complete_on_pp2(self, tiny_pp_deployment):
        """The followup hook fires at last-stage completion; multi-round
        conversations must work under pipeline parallelism too."""
        from repro.api import ServingConfig

        spec = small_spec(num_conversations=6, mean_rounds=2.0)
        result, metrics = simulate_conversations(
            tiny_pp_deployment, ServingConfig(token_budget=128), spec, seed=9
        )
        assert metrics.num_requests >= 6
        assert all(r.is_finished for r in result.requests)
        assert result.num_stages == 2
