"""Tests for multi-round conversation workloads and the followup hook."""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_engine
from repro.types import Request
from repro.workload.conversation import (
    ConversationSpec,
    ConversationWorkload,
    simulate_conversations,
)
from repro.workload.distributions import FixedLengths

from tests.conftest import make_request


def small_spec(**overrides) -> ConversationSpec:
    defaults = dict(
        num_conversations=5,
        first_turn_lengths=FixedLengths(100),
        followup_turn_lengths=FixedLengths(50),
        response_lengths=FixedLengths(10),
        mean_rounds=3.0,
        mean_think_time=0.5,
        arrival_qps=2.0,
    )
    defaults.update(overrides)
    return ConversationSpec(**defaults)


class TestConversationSpec:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_conversations", 0),
            ("mean_rounds", 0.5),
            ("mean_think_time", -1.0),
            ("arrival_qps", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            small_spec(**{field: value})


class TestConversationWorkload:
    def test_initial_requests_poisson_spaced(self):
        workload = ConversationWorkload(small_spec(), seed=1)
        requests = workload.initial_requests()
        assert len(requests) == 5
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(r.prompt_len == 100 for r in requests)

    def test_followup_grows_context(self):
        workload = ConversationWorkload(small_spec(mean_rounds=10.0), seed=2)
        first = workload.initial_requests()[0]
        first.record_prefill(first.prompt_len, now=1.0)
        while not first.is_finished:
            first.record_decode(now=2.0)
        followups = workload.followup(first, now=2.0)
        if followups:  # geometric rounds can stop after one
            nxt = followups[0]
            # Next prompt = prior context (100 + 10) + new 50-token turn.
            assert nxt.prompt_len == 160
            assert nxt.arrival_time >= 2.0

    def test_unknown_request_yields_nothing(self):
        workload = ConversationWorkload(small_spec(), seed=0)
        workload.initial_requests()
        stranger = make_request()
        assert workload.followup(stranger, now=1.0) == []

    def test_round_budget_respected(self):
        spec = small_spec(mean_rounds=1.0)  # geometric(1.0) == exactly 1 round
        workload = ConversationWorkload(spec, seed=0)
        requests = workload.initial_requests()
        for request in requests:
            request.record_prefill(request.prompt_len, now=1.0)
            while not request.is_finished:
                request.record_decode(now=1.5)
            assert workload.followup(request, now=1.5) == []

    def test_context_cap_stops_conversation(self):
        spec = small_spec(
            first_turn_lengths=FixedLengths(4400),
            response_lengths=FixedLengths(200),
            max_context=4500,
            mean_rounds=50.0,
        )
        workload = ConversationWorkload(spec, seed=0)
        request = workload.initial_requests()[0]
        request.record_prefill(request.prompt_len, now=1.0)
        while not request.is_finished:
            request.record_decode(now=1.5)
        assert workload.followup(request, now=1.5) == []


def drive(request) -> None:
    request.record_prefill(request.prompt_len, now=1.0)
    while not request.is_finished:
        request.record_decode(now=1.5)


class TestContextAccounting:
    """Regression pins for the multi-round context-accounting fixes."""

    def run_rounds(self, spec: ConversationSpec, seed: int = 0) -> list:
        """Drive one conversation to exhaustion; returns its requests."""
        workload = ConversationWorkload(spec, seed=seed)
        rounds = [workload.initial_requests()[0]]
        while True:
            drive(rounds[-1])
            nxt = workload.followup(rounds[-1], now=2.0)
            if not nxt:
                return rounds
            rounds.append(nxt[0])

    def test_round_by_round_growth_at_the_boundary(self):
        """Pin the growth sequence right up to the cap.  The old
        ``_clip`` ignored the accumulated context, so a late round
        could clip its prompt *below* the history it must carry."""
        spec = small_spec(
            first_turn_lengths=FixedLengths(300),
            followup_turn_lengths=FixedLengths(100),
            response_lengths=FixedLengths(50),
            max_context=800,
            mean_rounds=50.0,
        )
        rounds = self.run_rounds(spec)
        # Round 1: 300 + 50 = 350.  Round 2: 350 + 100 turn = 450,
        # output 50 -> 500.  Round 3: 500 + 100 = 600, output 50 ->
        # 650.  Round 4: 650 + 100 = 750, output clipped to 50 ->
        # (750, 50) = 800 = cap.  Round 5: 800 > 798 -> stop.
        assert [(r.prompt_len, r.output_len) for r in rounds] == [
            (300, 50), (450, 50), (600, 50), (750, 50),
        ]
        context = 0
        for r in rounds:
            assert r.prompt_len > context  # history can never shrink
            context = r.prompt_len + r.output_len
            assert context <= spec.max_context

    def test_prompt_never_clipped_below_context(self):
        """A huge first round already near the cap: the follow-up's
        prompt must keep the full history plus at least one turn token."""
        spec = small_spec(
            first_turn_lengths=FixedLengths(700),
            followup_turn_lengths=FixedLengths(500),
            response_lengths=FixedLengths(40),
            max_context=800,
            mean_rounds=50.0,
        )
        rounds = self.run_rounds(spec)
        assert rounds[0].prompt_len == 700
        assert len(rounds) >= 2
        follow = rounds[1]
        context = rounds[0].prompt_len + rounds[0].output_len  # 740
        # Turn clamped to max_context - 1 - context = 59 >= 1.
        assert follow.prompt_len == context + 59
        assert follow.output_len == 1

    def test_followup_offered_just_under_the_cap(self):
        """Off-by-one fix: the pre-check must compare against the room
        the *new* round needs (turn + one output token), not the bare
        cap.  At context == max_context - 2 one more round still fits."""
        spec = small_spec(
            first_turn_lengths=FixedLengths(700),
            followup_turn_lengths=FixedLengths(10),
            response_lengths=FixedLengths(98),
            max_context=800,
            mean_rounds=50.0,
        )
        workload = ConversationWorkload(spec, seed=0)
        first = workload.initial_requests()[0]
        assert first.prompt_len + first.output_len == 798  # cap - 2
        drive(first)
        followups = workload.followup(first, now=2.0)
        assert len(followups) == 1
        assert followups[0].prompt_len == 799
        assert followups[0].output_len == 1

    def test_followup_stops_one_past_the_boundary(self):
        spec = small_spec(
            first_turn_lengths=FixedLengths(700),
            followup_turn_lengths=FixedLengths(10),
            response_lengths=FixedLengths(99),
            max_context=800,
            mean_rounds=50.0,
        )
        workload = ConversationWorkload(spec, seed=0)
        first = workload.initial_requests()[0]
        assert first.prompt_len + first.output_len == 799  # cap - 1
        drive(first)
        assert workload.followup(first, now=2.0) == []

    def test_context_never_exceeds_cap_across_seeds(self):
        for seed in range(5):
            spec = small_spec(max_context=600, mean_rounds=20.0)
            rounds = self.run_rounds(spec, seed=seed)
            for r in rounds:
                assert r.prompt_len + r.output_len <= 600


class TestPrefixModes:
    def test_conversation_mode_tags_rounds(self):
        workload = ConversationWorkload(small_spec(mean_rounds=10.0), seed=2)
        requests = workload.initial_requests()
        assert [r.prefix_id for r in requests] == list(range(5))
        assert all(r.prefix_len == 0 for r in requests)
        first = requests[0]
        drive(first)
        followups = workload.followup(first, now=2.0)
        if followups:
            nxt = followups[0]
            assert nxt.prefix_id == first.prefix_id
            assert nxt.prefix_len == first.prompt_len + first.output_len

    def test_unique_mode_never_repeats_ids(self):
        spec = small_spec(mean_rounds=10.0, prefix_mode="unique")
        workload = ConversationWorkload(spec, seed=2)
        requests = list(workload.initial_requests())
        for _ in range(3):
            drive(requests[-1])
            requests.extend(workload.followup(requests[-1], now=2.0))
        ids = [r.prefix_id for r in requests]
        assert len(set(ids)) == len(ids)
        assert all(r.prefix_len == 0 for r in requests)

    def test_none_mode_leaves_requests_untagged(self):
        spec = small_spec(prefix_mode="none")
        workload = ConversationWorkload(spec, seed=2)
        assert all(r.prefix_id is None for r in workload.initial_requests())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="prefix_mode"):
            small_spec(prefix_mode="bogus")


class TestEngineFollowupHook:
    def test_followups_are_simulated(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        root = make_request(prompt_len=64, output_len=2)

        def one_followup(request: Request, now: float) -> list[Request]:
            if request is root:
                return [Request(prompt_len=32, output_len=2, arrival_time=now + 0.5)]
            return []

        result = engine.run([root], followup_fn=one_followup)
        assert len(result.requests) == 2
        assert all(r.is_finished for r in result.requests)
        child = result.requests[1]
        assert child.arrival_time >= root.finished_at

    def test_past_arrival_rejected(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        root = make_request(prompt_len=64, output_len=2)

        def bad_followup(request, now):
            return [Request(prompt_len=32, output_len=2, arrival_time=now - 5.0)]

        with pytest.raises(ValueError, match="past"):
            engine.run([root], followup_fn=bad_followup)

    def test_no_hook_means_no_extras(self, tiny_deployment):
        engine = build_engine(tiny_deployment, ServingConfig())
        result = engine.run([make_request(prompt_len=64, output_len=2)])
        assert len(result.requests) == 1


class TestSimulateConversations:
    def test_end_to_end(self, tiny_deployment):
        spec = small_spec(num_conversations=8, mean_rounds=2.0)
        result, metrics = simulate_conversations(
            tiny_deployment, ServingConfig(token_budget=128), spec, seed=4
        )
        # At least the initial rounds ran; geometric rounds add more.
        assert metrics.num_requests >= 8
        assert all(r.is_finished for r in result.requests)

    def test_seed_reproducible_request_count(self, tiny_deployment):
        spec = small_spec(num_conversations=6)
        _, a = simulate_conversations(tiny_deployment, ServingConfig(), spec, seed=7)
        _, b = simulate_conversations(tiny_deployment, ServingConfig(), spec, seed=7)
        assert a.num_requests == b.num_requests
        assert a.median_ttft == pytest.approx(b.median_ttft)


class TestFollowupUnderPipelineParallelism:
    def test_conversations_complete_on_pp2(self, tiny_pp_deployment):
        """The followup hook fires at last-stage completion; multi-round
        conversations must work under pipeline parallelism too."""
        from repro.api import ServingConfig

        spec = small_spec(num_conversations=6, mean_rounds=2.0)
        result, metrics = simulate_conversations(
            tiny_pp_deployment, ServingConfig(token_budget=128), spec, seed=9
        )
        assert metrics.num_requests >= 6
        assert all(r.is_finished for r in result.requests)
        assert result.num_stages == 2
