"""Golden-trace determinism: the same inputs must replay bit-for-bit.

Runs the full ``ReplicaEngine`` twice on clones of one fixed workload
and asserts the iteration records and per-request timelines agree
field-for-field.  This is the contract that makes the memoization
layer (``repro.perf.cache``) and all fixed-seed experiments sound —
and it would catch regressions such as iteration over unordered sets,
``EventQueue`` tie-break changes, or hidden global state leaking
between runs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ServingConfig, build_engine, clone_requests
from repro.types import SchedulerKind
from repro.workload.datasets import ARXIV_SUMMARIZATION, SHAREGPT4, generate_requests

from tests.conftest import make_request, shrink_kv_memory

pytestmark = pytest.mark.tier1


def _record_fields(record):
    """An IterationRecord as a comparable dict, batch ids relabelled.

    ``batch_id`` comes from a process-global counter so its absolute
    value differs between runs; what determinism owes us is that the
    *pattern* of ids matches, which relabelling preserves.
    """
    row = dataclasses.asdict(record)
    return row


def _golden_trace(result):
    records = sorted(result.records, key=lambda r: (r.start, r.stage))
    id_order: dict[int, int] = {}
    rows = []
    for record in records:
        row = _record_fields(record)
        row["batch_id"] = id_order.setdefault(record.batch_id, len(id_order))
        rows.append(row)
    return rows


def _request_timelines(result):
    return [
        (
            r.request_id,
            r.arrival_time,
            r.prompt_len,
            r.output_len,
            r.first_scheduled_at,
            r.first_token_at,
            r.finished_at,
            tuple(r.token_times),
            r.num_restarts,
        )
        for r in sorted(result.requests, key=lambda r: r.request_id)
    ]


@pytest.mark.parametrize(
    "kind",
    [
        SchedulerKind.SARATHI,
        SchedulerKind.VLLM,
        SchedulerKind.FASTER_TRANSFORMER,
        SchedulerKind.SARATHI_DYNAMIC,
    ],
)
@pytest.mark.parametrize("perf_cache", [True, False], ids=["cached", "uncached"])
def test_golden_trace_single_stage(tiny_deployment, kind, perf_cache, engine):
    if kind is SchedulerKind.SARATHI_DYNAMIC and engine == "vectorized":
        pytest.skip("dynamic budget control is object-engine only")
    trace = generate_requests(SHAREGPT4, num_requests=20, qps=1.5, seed=11)
    config = ServingConfig(
        scheduler=kind, token_budget=256, perf_cache=perf_cache, engine=engine
    )

    def run():
        built = build_engine(tiny_deployment, config)
        return built.run(clone_requests(trace))

    first, second = run(), run()
    assert _golden_trace(first) == _golden_trace(second)
    assert _request_timelines(first) == _request_timelines(second)
    assert first.makespan == second.makespan


def test_golden_trace_pipeline(tiny_pp_deployment):
    trace = generate_requests(ARXIV_SUMMARIZATION, num_requests=16, qps=1.0, seed=3)
    config = ServingConfig(token_budget=256)

    def run():
        engine = build_engine(tiny_pp_deployment, config)
        return engine.run(clone_requests(trace))

    first, second = run(), run()
    assert _golden_trace(first) == _golden_trace(second)
    assert _request_timelines(first) == _request_timelines(second)


def test_golden_trace_under_preemption_pressure(tiny_deployment, engine):
    """Replays stay identical even when preemptions/restarts kick in."""
    # Short prompts but long generations: admission lets many requests
    # in, then decode growth overflows the shrunken KV pool.
    trace = [
        make_request(prompt_len=256, output_len=300, arrival_time=0.005 * i)
        for i in range(10)
    ]
    config = ServingConfig(
        scheduler=SchedulerKind.VLLM, preemption_mode="recompute", engine=engine
    )

    def run():
        built = build_engine(tiny_deployment, config)
        shrink_kv_memory(built)
        return built.run(clone_requests(trace))

    first, second = run(), run()
    assert any(r.num_restarts > 0 for r in first.requests)
    assert _golden_trace(first) == _golden_trace(second)
    assert _request_timelines(first) == _request_timelines(second)


def test_workload_generation_is_seed_stable():
    """generate_requests is a pure function of (dataset, count, qps, seed)."""
    a = generate_requests(SHAREGPT4, num_requests=30, qps=2.0, seed=42)
    b = generate_requests(SHAREGPT4, num_requests=30, qps=2.0, seed=42)
    assert [(r.arrival_time, r.prompt_len, r.output_len) for r in a] == [
        (r.arrival_time, r.prompt_len, r.output_len) for r in b
    ]
    c = generate_requests(SHAREGPT4, num_requests=30, qps=2.0, seed=43)
    assert [(r.prompt_len, r.output_len) for r in a] != [
        (r.prompt_len, r.output_len) for r in c
    ]
