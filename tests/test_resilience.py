"""Resilience subsystem: fault kinds, domains, health, brownout, MTTR.

Covers the degraded-mode fault kinds (slowdown / capacity_loss) and
their restore semantics, correlated failure domains, the straggler
health monitor, the SLO-aware brownout controller, the token-budget
override hook on both scheduler stacks, the retry-storm jitter fix,
the recovery (time-to-SLO-reattainment) metric, and the resilience
experiment's headline acceptance: at a high fault rate, brownout-on
beats brownout-off on fleet goodput.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.api import Deployment, ServingConfig, build_engine, clone_requests
from repro.cluster.degradation import (
    BrownoutConfig,
    BrownoutController,
    DegradationLevel,
)
from repro.cluster.fleet import (
    FailureDomain,
    FaultKind,
    FaultSchedule,
    FleetConfig,
    FleetSimulator,
    HealthConfig,
    ReplicaFault,
    partition_domains,
    simulate_fleet,
)
from repro.cluster.health import HealthMonitor
from repro.hardware.catalog import A100_80G
from repro.metrics.recovery import recovery_report
from repro.metrics.stats import jain_fairness
from repro.models.catalog import TINY_1B
from repro.types import SchedulerKind

from tests.conftest import make_request

pytestmark = pytest.mark.tier1

_DEPLOYMENT = Deployment(model=TINY_1B, gpu=A100_80G)


def _decode_trace(n=12, prompt=64, output=120, gap=0.01):
    return [
        make_request(prompt_len=prompt, output_len=output, arrival_time=gap * i)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Fault kinds and severities
# ----------------------------------------------------------------------
class TestFaultKinds:
    def test_defaults_per_kind(self):
        crash = ReplicaFault(0, down_at=1.0, up_at=2.0)
        assert crash.kind is FaultKind.CRASH
        slow = ReplicaFault(0, down_at=1.0, up_at=2.0, kind="slowdown")
        assert slow.kind is FaultKind.SLOWDOWN
        assert slow.severity == 2.0
        cap = ReplicaFault(0, down_at=1.0, up_at=2.0, kind="capacity_loss")
        assert cap.severity == 0.5

    def test_severity_validation(self):
        with pytest.raises(ValueError):
            ReplicaFault(0, down_at=1.0, up_at=2.0, kind="slowdown", severity=0.9)
        with pytest.raises(ValueError):
            ReplicaFault(0, down_at=1.0, up_at=2.0, kind="capacity_loss", severity=1.5)
        with pytest.raises(ValueError):
            ReplicaFault(0, down_at=1.0, up_at=2.0, kind="crash", severity=2.0)
        with pytest.raises(ValueError):
            ReplicaFault(0, down_at=1.0, up_at=2.0, kind="power_surge")

    def test_slowdown_changes_timelines_and_restores(self, engine):
        """A slowdown window shifts finish times while it is open and
        leaves the replica at full speed after it closes."""
        trace = _decode_trace()
        config = ServingConfig(engine=engine, token_budget=256)

        def finishes(faults):
            result, _ = simulate_fleet(
                _DEPLOYMENT,
                config,
                clone_requests(trace),
                FleetConfig(num_replicas=1, faults=faults),
            )
            return [r.finished_at for r in result.merged().requests]

        clean = finishes(FaultSchedule())
        slowed = finishes(
            FaultSchedule.single(
                0, down_at=0.05, up_at=1.0, kind="slowdown", severity=3.0
            )
        )
        assert slowed != clean
        assert all(s >= c - 1e-12 for s, c in zip(slowed, clean))
        # Restore semantics: once the window closes, requests arriving
        # afterwards run at full speed — a late-only trace under the
        # same fault matches the clean run exactly.
        late_trace = [
            make_request(prompt_len=64, output_len=120, arrival_time=5.0 + 0.01 * i)
            for i in range(4)
        ]

        def finishes_late(faults):
            result, _ = simulate_fleet(
                _DEPLOYMENT,
                config,
                clone_requests(late_trace),
                FleetConfig(num_replicas=1, faults=faults),
            )
            return [r.finished_at for r in result.merged().requests]

        assert finishes_late(
            FaultSchedule.single(
                0, down_at=0.05, up_at=1.0, kind="slowdown", severity=3.0
            )
        ) == finishes_late(FaultSchedule())


# ----------------------------------------------------------------------
# Failure domains and correlated schedules
# ----------------------------------------------------------------------
class TestFailureDomains:
    def test_partition_covers_all_replicas_disjointly(self):
        domains = partition_domains(5, 2)
        members = [r for d in domains for r in d.replicas]
        assert sorted(members) == list(range(5))
        assert len(domains) == 2

    def test_correlated_hits_whole_domain_at_once(self):
        domains = partition_domains(4, 2)
        schedule = FaultSchedule.correlated(
            domains, rate=0.5, mean_downtime=1.0, horizon=10.0, seed=7
        )
        schedule.validate(4)
        by_time: dict[tuple, list[int]] = {}
        for fault in schedule.faults:
            by_time.setdefault((fault.down_at, fault.up_at), []).append(
                fault.replica
            )
        assert by_time, "rate 0.5 over 10s should draw at least one event"
        domain_sets = [set(d.replicas) for d in domains]
        for replicas in by_time.values():
            assert set(replicas) in domain_sets

    def test_correlated_is_deterministic_per_seed(self):
        domains = partition_domains(4, 2)
        kw = dict(rate=0.5, mean_downtime=1.0, horizon=10.0)
        assert FaultSchedule.correlated(
            domains, seed=3, **kw
        ) == FaultSchedule.correlated(domains, seed=3, **kw)
        assert FaultSchedule.correlated(
            domains, seed=3, **kw
        ) != FaultSchedule.correlated(domains, seed=4, **kw)

    def test_overlapping_domains_rejected(self):
        overlapping = (
            FailureDomain("a", (0, 1)),
            FailureDomain("b", (1, 2)),
        )
        with pytest.raises(ValueError):
            FaultSchedule.correlated(
                overlapping, rate=0.5, mean_downtime=1.0, horizon=5.0, seed=0
            )


# ----------------------------------------------------------------------
# Memory shed/restore (capacity_loss plumbing)
# ----------------------------------------------------------------------
class TestCapacityShed:
    def test_shed_and_restore_round_trip(self, engine):
        memory = build_engine(
            _DEPLOYMENT, ServingConfig(engine=engine, token_budget=256)
        ).scheduler.memory
        total = memory.num_blocks
        free_before = memory.free_blocks
        lost = memory.shed_capacity(0.5)
        assert lost == int(total * 0.5)
        assert memory.num_blocks == total - lost
        assert memory.free_blocks == free_before - lost
        memory.restore_capacity(lost)
        assert memory.num_blocks == total
        assert memory.free_blocks == free_before

    def test_shed_fraction_validated(self, engine):
        memory = build_engine(
            _DEPLOYMENT, ServingConfig(engine=engine, token_budget=256)
        ).scheduler.memory
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                memory.shed_capacity(bad)
        with pytest.raises(ValueError):
            memory.restore_capacity(-1)

    def test_capacity_loss_forces_preemptions_and_restores(self, engine):
        """A deep capacity cut mid-run must cause evictions (preempted
        work) yet still finish every request after the pool returns."""
        trace = _decode_trace(n=8, prompt=512, output=80)
        result, metrics = simulate_fleet(
            _DEPLOYMENT,
            ServingConfig(engine=engine, token_budget=256),
            clone_requests(trace),
            FleetConfig(
                num_replicas=1,
                faults=FaultSchedule.single(
                    0,
                    down_at=0.05,
                    up_at=3.0,
                    kind="capacity_loss",
                    severity=0.999,
                ),
            ),
        )
        assert not result.lost_requests()
        assert all(r.is_finished for r in result.requests)
        assert metrics.num_preemptions > 0


# ----------------------------------------------------------------------
# Health monitor
# ----------------------------------------------------------------------
def _slot(index, tbts, alive=True, draining=False):
    return SimpleNamespace(
        index=index, alive=alive, draining=draining, recent_tbts=list(tbts)
    )


class TestHealthMonitor:
    def test_flags_inflated_replica(self):
        config = HealthConfig(min_samples=4, inflation_factor=2.0, min_healthy=1)
        monitor = HealthMonitor(config, num_replicas=3)
        slots = [
            _slot(0, [0.05] * 8),
            _slot(1, [0.05] * 8),
            _slot(2, [0.30] * 8),
        ]
        flagged = monitor.flag_stragglers(slots)
        assert [index for index, _ in flagged] == [2]
        assert flagged[0][1] == pytest.approx(6.0)

    def test_needs_min_samples_and_peers(self):
        config = HealthConfig(min_samples=8, inflation_factor=2.0)
        monitor = HealthMonitor(config, num_replicas=2)
        assert monitor.flag_stragglers(
            [_slot(0, [0.05] * 8), _slot(1, [0.5] * 3)]
        ) == []
        assert monitor.flag_stragglers([_slot(0, [0.5] * 8)]) == []

    def test_min_healthy_floor_holds(self):
        config = HealthConfig(min_samples=4, inflation_factor=1.5, min_healthy=3)
        monitor = HealthMonitor(config, num_replicas=4)
        slots = [
            _slot(0, [0.05] * 8),
            _slot(1, [0.05] * 8),
            _slot(2, [0.40] * 8),
            _slot(3, [0.50] * 8),
        ]
        # Both 2 and 3 inflate, but draining both would leave only two
        # routable replicas < min_healthy=3 — exactly one is drained.
        flagged = monitor.flag_stragglers(slots)
        assert [index for index, _ in flagged] == [2]

    def test_fleet_drains_and_restarts_straggler(self, engine):
        """Integration: a slowed replica is drained and later restarted,
        and the run still conserves every request."""
        trace = _decode_trace(n=18, output=200)
        config = ServingConfig(engine=engine, token_budget=256)
        # Three replicas: with only two, the fleet median is the mean of
        # the healthy and slowed medians and a 5x straggler only shows a
        # 1.67x inflation — an outlier needs a majority to stand against.
        fleet_config = FleetConfig(
            num_replicas=3,
            faults=FaultSchedule.single(
                2, down_at=0.02, up_at=20.0, kind="slowdown", severity=5.0
            ),
            health=HealthConfig(
                check_interval=0.1, min_samples=8, inflation_factor=2.0
            ),
        )
        result, _ = simulate_fleet(
            _DEPLOYMENT, config, clone_requests(trace), fleet_config
        )
        kinds = [e.kind for e in result.events]
        assert "drain_start" in kinds
        assert "health_restart" in kinds
        drain = next(e for e in result.events if e.kind == "drain_start")
        assert drain.replica == 2
        assert not result.lost_requests()


# ----------------------------------------------------------------------
# Brownout controller
# ----------------------------------------------------------------------
def _ladder(**overrides):
    kw = dict(
        levels=(
            DegradationLevel(token_budget=128),
            DegradationLevel(token_budget=128, max_context=1000),
            DegradationLevel(
                token_budget=128, max_context=1000, shed_client_ids=(2,)
            ),
        ),
        tbt_slo=0.1,
        enter_margin=0.5,
        exit_margin=0.1,
        min_dwell=1.0,
        check_interval=0.25,
        min_samples=4,
    )
    kw.update(overrides)
    return BrownoutConfig(**kw)


class TestBrownoutController:
    def test_margin_ordering_validated(self):
        with pytest.raises(ValueError):
            _ladder(enter_margin=0.1, exit_margin=0.5)
        with pytest.raises(ValueError):
            _ladder(levels=())

    def test_steps_up_and_down_with_hysteresis(self):
        controller = BrownoutController(_ladder())
        hot = [_slot(0, [0.2] * 8)]
        cool = [_slot(0, [0.05] * 8)]
        change = controller.evaluate(1.0, hot)
        assert change is not None and change.direction == 1
        assert controller.level == 1
        # Dwell gate: immediately after a step, nothing moves.
        assert controller.evaluate(1.5, hot) is None
        assert controller.evaluate(2.5, hot).level == 2
        assert controller.evaluate(3.8, hot).level == 3
        # Between exit and enter thresholds: hold the level.
        between = [_slot(0, [0.12] * 8)]
        assert controller.evaluate(5.0, between) is None
        down = controller.evaluate(6.0, cool)
        assert down.direction == -1 and controller.level == 2

    def test_idle_fleet_steps_down(self):
        controller = BrownoutController(_ladder(), level=2)
        change = controller.evaluate(10.0, [_slot(0, [])])
        assert change is not None and change.direction == -1
        assert change.p99_tbt is None

    def test_admission_veto_and_budget(self):
        controller = BrownoutController(_ladder(), level=3)
        assert controller.active_budget() == 128
        tenant = make_request(prompt_len=100, output_len=10, arrival_time=0.0)
        tenant.client_id = 2
        assert controller.admission_veto(tenant) == "brownout_tenant"
        big = make_request(prompt_len=900, output_len=200, arrival_time=0.0)
        big.client_id = 0
        assert controller.admission_veto(big) == "brownout_context"
        ok = make_request(prompt_len=100, output_len=10, arrival_time=0.0)
        ok.client_id = 0
        assert controller.admission_veto(ok) is None
        controller_off = BrownoutController(_ladder(), level=0)
        assert controller_off.active_budget() is None
        assert controller_off.admission_veto(tenant) is None


# ----------------------------------------------------------------------
# Token-budget override hook (both scheduler stacks)
# ----------------------------------------------------------------------
class TestBudgetOverride:
    @pytest.mark.parametrize(
        "kind", [SchedulerKind.SARATHI, SchedulerKind.SARATHI_DYNAMIC]
    )
    def test_override_clamps_and_restores(self, engine, kind):
        built = build_engine(
            _DEPLOYMENT, ServingConfig(engine=engine, scheduler=kind, token_budget=512)
        )
        scheduler = built.scheduler
        base = scheduler.token_budget
        base_min = getattr(scheduler, "min_budget", None)
        base_max = getattr(scheduler, "max_budget", None)
        scheduler.override_token_budget(128)
        if base_max is not None:
            assert scheduler.max_budget == min(base_max, 128)
            assert scheduler.min_budget <= scheduler.max_budget
        else:
            assert scheduler.token_budget == 128
        # A wider override never raises the budget above its base.
        scheduler.override_token_budget(10**9)
        if base_max is not None:
            assert scheduler.max_budget == base_max
        else:
            assert scheduler.token_budget == base
        scheduler.override_token_budget(None)
        assert scheduler.token_budget == base
        if base_min is not None:
            assert scheduler.min_budget == base_min
        if base_max is not None:
            assert scheduler.max_budget == base_max

    def test_invalid_override_rejected(self):
        scheduler = build_engine(
            _DEPLOYMENT, ServingConfig(token_budget=512)
        ).scheduler
        with pytest.raises(ValueError):
            scheduler.override_token_budget(0)


# ----------------------------------------------------------------------
# Retry-storm jitter (satellite regression)
# ----------------------------------------------------------------------
class TestRetryJitter:
    def _run(self, trace=None, **fleet_overrides):
        # Jitter is keyed by (seed, request_id, attempt), so the
        # determinism test must replay the *same* request ids.
        if trace is None:
            trace = [
                make_request(prompt_len=64, output_len=40, arrival_time=0.0)
                for _ in range(6)
            ]
        fleet_config = FleetConfig(
            num_replicas=1,
            max_queue_depth=1,
            max_retries=4,
            **fleet_overrides,
        )
        result, _ = simulate_fleet(
            _DEPLOYMENT,
            ServingConfig(token_budget=256),
            clone_requests(trace),
            fleet_config,
        )
        return [
            e for e in result.events if e.kind == "reject" and e.retry_at is not None
        ]

    def test_concurrent_rejects_desynchronize(self):
        """The regression: a cohort bounced at the same instant must not
        retry at the same instant (the retry storm)."""
        rejects = self._run()
        same_attempt = [e for e in rejects if e.attempt == 0]
        assert len(same_attempt) >= 2
        retry_ats = [e.retry_at for e in same_attempt]
        assert len(set(retry_ats)) == len(retry_ats)

    def test_jitter_zero_restores_lockstep(self):
        rejects = self._run(retry_jitter=0.0)
        same_attempt = [e for e in rejects if e.attempt == 0]
        assert len(same_attempt) >= 2
        assert len({e.retry_at for e in same_attempt}) == 1

    def test_backoff_capped(self):
        rejects = self._run(
            retry_backoff=1.0,
            retry_backoff_factor=10.0,
            retry_backoff_max=2.0,
            retry_jitter=0.0,
        )
        for event in rejects:
            assert event.retry_at - event.time <= 2.0 + 1e-9

    def test_jitter_deterministic_per_seed(self):
        trace = [
            make_request(prompt_len=64, output_len=40, arrival_time=0.0)
            for _ in range(6)
        ]
        a = self._run(trace=trace, retry_seed=5)
        b = self._run(trace=trace, retry_seed=5)
        c = self._run(trace=trace, retry_seed=6)
        assert [e.retry_at for e in a] == [e.retry_at for e in b]
        assert [e.retry_at for e in a] != [e.retry_at for e in c]


# ----------------------------------------------------------------------
# Recovery metric (time-to-SLO-reattainment)
# ----------------------------------------------------------------------
class TestRecoveryReport:
    def _result(self, faults):
        result, _ = simulate_fleet(
            _DEPLOYMENT,
            ServingConfig(token_budget=256),
            _decode_trace(n=16, output=150),
            FleetConfig(num_replicas=2, faults=faults),
        )
        return result

    def test_clean_run_has_no_disruptions(self):
        report = recovery_report(self._result(FaultSchedule()), slo_tbt=0.5)
        assert report.num_disruptions == 0
        assert report.mean_recovery_time is None

    def test_crash_window_is_measured(self):
        report = recovery_report(
            self._result(FaultSchedule.single(1, down_at=0.1, up_at=0.6)),
            slo_tbt=0.5,
            window=0.5,
        )
        assert report.num_disruptions == 1
        disruption = report.disruptions[0]
        assert disruption.time == pytest.approx(0.1)
        assert disruption.kinds == ("fault_down",)
        if disruption.recovery_time is not None:
            assert disruption.recovery_time >= 0.0
            assert report.mean_recovery_time == disruption.recovery_time
        else:
            assert report.num_censored == 1

    def test_correlated_event_is_one_disruption(self):
        domains = partition_domains(2, 2)
        faults = FaultSchedule(
            tuple(
                ReplicaFault(r, down_at=0.1, up_at=0.4)
                for d in domains
                for r in d.replicas
            )
        )
        report = recovery_report(self._result(faults), slo_tbt=0.5)
        assert report.num_disruptions == 1
        assert sorted(report.disruptions[0].replicas) == [0, 1]

    def test_validation(self):
        result = self._result(FaultSchedule())
        with pytest.raises(ValueError):
            recovery_report(result, slo_tbt=0.0)
        with pytest.raises(ValueError):
            recovery_report(result, slo_tbt=0.1, window=0.0)
        with pytest.raises(ValueError):
            recovery_report(result, slo_tbt=0.1, min_samples=0)


# ----------------------------------------------------------------------
# Fairness stats (leaderboard satellite)
# ----------------------------------------------------------------------
class TestJainFairness:
    def test_equal_is_one(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        assert jain_fairness([5.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_one(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([1.0, -0.1])

    def test_leaderboard_table_renders_fairness_columns(self):
        from repro.experiments.leaderboard import (
            LeaderboardCell,
            LeaderboardRow,
            leaderboard_table,
        )

        cell = LeaderboardCell(
            scheduler="sarathi", workload="static", qps=4.0,
            num_offered=10, num_finished=10, mean_latency=1.0,
            median_ttft=0.2, p99_tbt=0.1, attainment=0.9,
            goodput_rps=2.0, num_preemptions=0,
            max_wait=1.25, latency_fairness=0.875,
        )
        headers, rows = leaderboard_table(
            [LeaderboardRow(cell=cell, capacity_qps=None, rank=1)]
        )
        assert "max wait (s)" in headers
        assert "fairness" in headers
        assert rows[0][headers.index("max wait (s)")] == "1.25"
        assert rows[0][headers.index("fairness")] == "0.875"


# ----------------------------------------------------------------------
# The resilience experiment: determinism and the brownout payoff
# ----------------------------------------------------------------------
class TestResilienceExperiment:
    def test_registered_figure(self):
        from repro.experiments.registry import REGISTRY

        assert "resilience" in REGISTRY
        assert REGISTRY["resilience"].expensive

    def _points(self):
        from repro.api import execution_model_for
        from repro.experiments.common import Scale, mistral_deployment
        from repro.experiments.resilience import (
            ResiliencePointSpec,
            SWEEP_TOKEN_BUDGET,
            run_resilience_point,
        )
        from repro.metrics.slo import derived_slo

        deployment = mistral_deployment()
        config = ServingConfig(
            scheduler=SchedulerKind.SARATHI, token_budget=SWEEP_TOKEN_BUDGET
        )
        slo = derived_slo(execution_model_for(deployment, config), strict=True)
        scale = Scale(
            num_requests=40, capacity_rel_tol=0.2, capacity_max_probes=3, seed=0
        )
        out = {}
        for brownout in (False, True):
            spec = ResiliencePointSpec(
                deployment=deployment,
                config=config,
                scale=scale,
                num_replicas=4,
                qps=6.0,
                fault_rate=0.15,
                correlated=True,
                brownout=brownout,
                mean_downtime=6.0,
                tbt_deadline=slo.p99_tbt,
            )
            out[brownout] = (spec, run_resilience_point(spec))
        return out

    def test_deterministic_and_brownout_beats_off_at_high_fault_rate(self):
        """Acceptance: same seed → identical point; at the sweep's high
        fault rate the brownout-on arm wins on fleet goodput and
        recovers faster."""
        from repro.experiments.resilience import run_resilience_point

        points = self._points()
        spec_off, off = points[False]
        _, on = points[True]
        assert run_resilience_point(spec_off) == off  # deterministic
        assert on.goodput_rps > off.goodput_rps
        assert on.attainment > off.attainment
        assert off.num_disruptions > 0
        if off.mean_recovery_s is not None and on.mean_recovery_s is not None:
            assert on.mean_recovery_s <= off.mean_recovery_s
