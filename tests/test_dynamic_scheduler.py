"""Tests for the dynamic-token-budget extension (future work, §5.1)."""

from __future__ import annotations

import pytest

from repro.api import Deployment, ServingConfig, build_scheduler, simulate
from repro.core.dynamic import DynamicSarathiScheduler
from repro.memory.block_manager import PagedBlockManager
from repro.perf.profiler import derive_slo, hybrid_iteration_time
from repro.types import SchedulerKind

from tests.conftest import make_request


def constant_cost(value: float):
    return lambda works: value


def token_proportional_cost(per_token: float):
    return lambda works: per_token * sum(w.num_tokens for w in works)


def dynamic(cost_fn, tbt_slo=1.0, **kwargs):
    memory = PagedBlockManager(65536, block_size=16, watermark=0.0)
    return DynamicSarathiScheduler(
        memory, tbt_slo=tbt_slo, iteration_cost=cost_fn, **kwargs
    )


class TestConstruction:
    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            dynamic(constant_cost(0.1), tbt_slo=0.0)

    def test_invalid_budget_range_rejected(self):
        with pytest.raises(ValueError):
            dynamic(constant_cost(0.1), min_budget=512, max_budget=128)
        with pytest.raises(ValueError):
            dynamic(constant_cost(0.1), budget_step=0)


class TestBudgetSelection:
    def test_max_budget_when_everything_fits(self):
        s = dynamic(constant_cost(0.01), tbt_slo=1.0, max_budget=4096)
        s.add_request(make_request(prompt_len=10_000, output_len=2), now=0.0)
        batch = s.schedule(now=0.0)
        assert s.budget_history[-1] == 4096
        assert batch.num_tokens <= 4096

    def test_min_budget_when_nothing_fits(self):
        s = dynamic(constant_cost(10.0), tbt_slo=1.0, min_budget=128)
        s.add_request(make_request(prompt_len=10_000, output_len=2), now=0.0)
        s.schedule(now=0.0)
        assert s.budget_history[-1] == 128

    def test_budget_tracks_cost_threshold(self):
        # Cost = 1ms per token, SLO 0.5s -> 500 tokens -> grid lands at
        # the largest 128-step value that fits.
        s = dynamic(
            token_proportional_cost(1e-3),
            tbt_slo=0.5,
            min_budget=128,
            max_budget=4096,
            budget_step=128,
        )
        s.add_request(make_request(prompt_len=10_000, output_len=2), now=0.0)
        s.schedule(now=0.0)
        chosen = s.budget_history[-1]
        assert 256 <= chosen <= 512

    def test_budget_shrinks_as_decode_pool_grows(self):
        """With live decodes consuming SLO headroom, less prefill fits."""
        costs = token_proportional_cost(1e-3)
        s = dynamic(costs, tbt_slo=0.5, max_budget=4096)
        s.add_request(make_request(prompt_len=400, output_len=50), now=0.0)
        s.on_batch_complete(s.schedule(now=0.0), now=0.1)
        first_budget = s.budget_history[-1]
        # Grow the decode pool substantially.
        for _ in range(30):
            r = make_request(prompt_len=400, output_len=50)
            s.add_request(r, now=0.1)
        now = 0.1
        for _ in range(20):
            batch = s.schedule(now)
            if batch is None:
                break
            now += 0.1
            s.on_batch_complete(batch, now)
        assert min(s.budget_history[2:]) <= first_budget

    def test_budget_history_recorded_per_iteration(self):
        s = dynamic(constant_cost(0.01))
        s.add_request(make_request(prompt_len=1000, output_len=3), now=0.0)
        now = 0.0
        while s.has_work:
            batch = s.schedule(now)
            if batch is None:
                break
            now += 0.1
            s.on_batch_complete(batch, now)
        assert len(s.budget_history) == s.num_scheduled_batches


class TestEndToEnd:
    def test_via_api_and_meets_slo(self, tiny_deployment):
        trace = [
            make_request(prompt_len=500, output_len=20, arrival_time=0.02 * i)
            for i in range(30)
        ]
        config = ServingConfig(scheduler=SchedulerKind.SARATHI_DYNAMIC)
        result, metrics = simulate(tiny_deployment, config, trace)
        assert all(r.is_finished for r in result.requests)
        slo = derive_slo(tiny_deployment.execution_model(), strict=True)
        assert metrics.p99_tbt <= slo * 1.05

    def test_build_scheduler_wires_oracle(self, tiny_deployment):
        scheduler = build_scheduler(
            tiny_deployment, ServingConfig(scheduler=SchedulerKind.SARATHI_DYNAMIC)
        )
        assert isinstance(scheduler, DynamicSarathiScheduler)
        # The oracle prices more tokens as more time.
        from repro.types import TokenWork

        small = scheduler.iteration_cost([TokenWork.prefill_chunk(64)])
        large = scheduler.iteration_cost([TokenWork.prefill_chunk(2048)])
        assert large > small

    def test_explicit_slo_respected(self, tiny_deployment):
        config = ServingConfig(
            scheduler=SchedulerKind.SARATHI_DYNAMIC, tbt_slo=0.25
        )
        scheduler = build_scheduler(tiny_deployment, config)
        assert scheduler.tbt_slo == 0.25

    def test_dynamic_improves_ttft_over_static(self, tiny_deployment):
        """The point of the extension: unused SLO headroom becomes
        prefill progress."""
        trace = [
            make_request(prompt_len=2000, output_len=10, arrival_time=0.05 * i)
            for i in range(20)
        ]
        exec_model = tiny_deployment.execution_model()
        slo = derive_slo(exec_model, strict=True)
        static = ServingConfig(scheduler=SchedulerKind.SARATHI, token_budget=256)
        dynamic_cfg = ServingConfig(
            scheduler=SchedulerKind.SARATHI_DYNAMIC, tbt_slo=slo
        )
        _, static_metrics = simulate(tiny_deployment, static, trace)
        _, dynamic_metrics = simulate(tiny_deployment, dynamic_cfg, trace)
        assert dynamic_metrics.median_ttft <= static_metrics.median_ttft
        assert dynamic_metrics.p99_tbt <= slo * 1.05
