"""Tests for batch composition."""

from __future__ import annotations

import pytest

from repro.batch import Batch, ScheduledWork
from repro.types import TokenWork

from tests.conftest import make_request


def _prefill_item(chunk=64, past=0):
    return ScheduledWork(
        request=make_request(prompt_len=chunk + past),
        work=TokenWork.prefill_chunk(chunk, past_len=past),
    )


def _decode_item(context=100):
    r = make_request(prompt_len=context, output_len=8)
    r.record_prefill(context, now=0.0)
    return ScheduledWork(request=r, work=TokenWork.decode(context))


class TestBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(items=[])

    def test_duplicate_request_rejected(self):
        item = _decode_item()
        with pytest.raises(ValueError, match="twice"):
            Batch(items=[item, item])

    def test_token_accounting(self):
        batch = Batch(items=[_prefill_item(chunk=128), _decode_item(), _decode_item()])
        assert batch.num_tokens == 130
        assert batch.num_prefill_tokens == 128
        assert batch.num_decode_tokens == 2
        assert batch.num_prefill_seqs == 1
        assert batch.num_decode_seqs == 2
        assert batch.size == 3

    def test_hybrid_detection(self):
        assert Batch(items=[_prefill_item(), _decode_item()]).is_hybrid
        assert not Batch(items=[_decode_item(), _decode_item()]).is_hybrid
        assert not Batch(items=[_prefill_item()]).is_hybrid

    def test_unique_batch_ids(self):
        a = Batch(items=[_decode_item()])
        b = Batch(items=[_decode_item()])
        assert a.batch_id != b.batch_id

    def test_works_and_requests_align(self):
        items = [_prefill_item(), _decode_item()]
        batch = Batch(items=items)
        assert batch.works == [i.work for i in items]
        assert batch.requests == [i.request for i in items]

    def test_describe_mentions_composition(self):
        batch = Batch(items=[_prefill_item(chunk=128), _decode_item()])
        text = batch.describe()
        assert "1p" in text and "1d" in text and "129tok" in text
