"""Tests for the scheduler-comparison reporting module."""

from __future__ import annotations

import pytest

from repro.reporting import ComparisonRow, compare_schedulers, render_markdown
from repro.types import SchedulerKind

from tests.conftest import make_request


@pytest.fixture(scope="module")
def rows(request):
    from repro.api import Deployment
    from repro.hardware.catalog import A100_80G
    from repro.models.catalog import TINY_1B

    deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    trace = [
        make_request(prompt_len=400, output_len=10, arrival_time=0.05 * i)
        for i in range(16)
    ]
    return compare_schedulers(
        deployment,
        trace,
        schedulers=(SchedulerKind.VLLM, SchedulerKind.SARATHI),
        token_budget=256,
    )


class TestCompareSchedulers:
    def test_row_per_scheduler(self, rows):
        assert [r.scheduler for r in rows] == ["vllm", "sarathi"]

    def test_metrics_populated(self, rows):
        for row in rows:
            assert row.median_ttft > 0
            assert row.p99_tbt > 0
            assert row.throughput_tokens_per_s > 0

    def test_sarathi_has_smaller_stalls(self, rows):
        by_name = {r.scheduler: r for r in rows}
        assert by_name["sarathi"].worst_stall <= by_name["vllm"].worst_stall

    def test_empty_trace_rejected(self):
        from repro.api import Deployment
        from repro.hardware.catalog import A100_80G
        from repro.models.catalog import TINY_1B

        with pytest.raises(ValueError):
            compare_schedulers(Deployment(model=TINY_1B, gpu=A100_80G), [])


class TestRenderMarkdown:
    def test_table_structure(self, rows):
        text = render_markdown(rows, title="test run")
        lines = text.splitlines()
        assert lines[0] == "### test run"
        assert lines[2].startswith("| scheduler |")
        # Header row plus one row per scheduler (separator starts "|--").
        assert len([l for l in lines if l.startswith("| ")]) == 1 + len(rows)

    def test_no_title(self, rows):
        text = render_markdown(rows)
        assert not text.startswith("###")

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_markdown([])
