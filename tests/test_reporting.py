"""Tests for the scheduler-comparison reporting module."""

from __future__ import annotations

import pytest

from repro.reporting import (
    BENCH_SCHEMA_VERSION,
    BenchCase,
    ComparisonRow,
    bench_payload as make_bench_payload,
    compare_schedulers,
    read_bench_json,
    render_bench_table,
    render_markdown,
    write_bench_json,
)
from repro.types import SchedulerKind

from tests.conftest import make_request


@pytest.fixture(scope="module")
def rows(request):
    from repro.api import Deployment
    from repro.hardware.catalog import A100_80G
    from repro.models.catalog import TINY_1B

    deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    trace = [
        make_request(prompt_len=400, output_len=10, arrival_time=0.05 * i)
        for i in range(16)
    ]
    return compare_schedulers(
        deployment,
        trace,
        schedulers=(SchedulerKind.VLLM, SchedulerKind.SARATHI),
        token_budget=256,
    )


class TestCompareSchedulers:
    def test_row_per_scheduler(self, rows):
        assert [r.scheduler for r in rows] == ["vllm", "sarathi"]

    def test_metrics_populated(self, rows):
        for row in rows:
            assert row.median_ttft > 0
            assert row.p99_tbt > 0
            assert row.throughput_tokens_per_s > 0

    def test_sarathi_has_smaller_stalls(self, rows):
        by_name = {r.scheduler: r for r in rows}
        assert by_name["sarathi"].worst_stall <= by_name["vllm"].worst_stall

    def test_empty_trace_rejected(self):
        from repro.api import Deployment
        from repro.hardware.catalog import A100_80G
        from repro.models.catalog import TINY_1B

        with pytest.raises(ValueError):
            compare_schedulers(Deployment(model=TINY_1B, gpu=A100_80G), [])


class TestBenchReport:
    CASE = BenchCase(
        name="capacity_sweep_dynamic",
        uncached_seconds=20.0,
        cached_seconds=2.0,
        identical=True,
        cache_hits=30,
        cache_misses=10,
        work_hits=970,
        work_misses=30,
        detail="tiny run",
    )

    def test_derived_rates(self):
        assert self.CASE.speedup == pytest.approx(10.0)
        assert self.CASE.hit_rate == pytest.approx(0.75)
        assert self.CASE.work_hit_rate == pytest.approx(0.97)

    def test_zero_cached_seconds_is_inf_speedup(self):
        case = BenchCase(
            name="x", uncached_seconds=1.0, cached_seconds=0.0, identical=True
        )
        assert case.speedup == float("inf")

    def test_payload_shape(self):
        payload = make_bench_payload([self.CASE], meta={"seed": 0})
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["meta"] == {"seed": 0}
        (row,) = payload["cases"]
        assert row["speedup"] == pytest.approx(10.0)
        assert row["identical"] is True

    def test_payload_requires_cases(self):
        with pytest.raises(ValueError):
            make_bench_payload([])

    def test_json_roundtrip(self, tmp_path):
        path = write_bench_json(tmp_path / "bench.json", [self.CASE], {"q": True})
        assert read_bench_json(path) == make_bench_payload([self.CASE], {"q": True})

    def test_render_table(self):
        text = render_bench_table([self.CASE])
        assert "capacity_sweep_dynamic" in text
        assert "10.0" in text and "yes" in text


class TestRenderMarkdown:
    def test_table_structure(self, rows):
        text = render_markdown(rows, title="test run")
        lines = text.splitlines()
        assert lines[0] == "### test run"
        assert lines[2].startswith("| scheduler |")
        # Header row plus one row per scheduler (separator starts "|--").
        assert len([l for l in lines if l.startswith("| ")]) == 1 + len(rows)

    def test_no_title(self, rows):
        text = render_markdown(rows)
        assert not text.startswith("###")

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_markdown([])
