"""Calibration-anchor regression tests.

These pin the perf model to the absolute numbers the paper publishes;
any refactor of the roofline constants must keep them green.
"""

from __future__ import annotations

import pytest

from repro.perf.calibration import Calibration
from repro.perf.validation import AnchorCheck, assert_calibrated, validate_calibration


class TestAnchors:
    def test_all_anchors_pass_with_default_calibration(self):
        checks = validate_calibration()
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(str(c) for c in failed)

    def test_anchor_names_cover_the_key_claims(self):
        names = " ".join(c.name for c in validate_calibration())
        for keyword in ("SLO", "prefill", "chunk", "decode", "tile"):
            assert keyword in names

    def test_assert_calibrated_passes(self):
        assert_calibrated()

    def test_assert_calibrated_detects_drift(self):
        # Gut the GEMM efficiency: prefill anchors must blow up.
        broken = Calibration(matmul_efficiency=0.05)
        with pytest.raises(AssertionError, match="drifted"):
            assert_calibrated(broken)

    def test_anchor_check_formatting(self):
        check = AnchorCheck(
            name="x", source="paper", measured=2.0, low=1.0, high=3.0
        )
        assert check.passed
        assert "ok" in str(check)
        bad = AnchorCheck(name="x", source="paper", measured=5.0, low=1.0, high=3.0)
        assert not bad.passed
        assert "OFF" in str(bad)
