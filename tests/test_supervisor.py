"""Tests for the supervised executor (``repro.runtime.supervisor``).

The contract under test is survival without divergence: worker death,
hangs and poison tasks must never abort a sweep, and every recovered
run must produce output bit-identical to the unfaulted serial run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runtime import (
    ChaosConfig,
    SupervisorPolicy,
    SweepFailedError,
    map_tasks,
    run_supervised,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def square(x: int) -> int:  # module-level: picklable for worker processes
    return x * x


def double_or_poison(x: int) -> int:
    if x < 0:
        raise ValueError(f"poison item {x}")
    return x * 2


def flaky_once(arg: tuple[int, str]) -> int:
    """Fails the first time each item is attempted, succeeds after.

    The marker lives on disk, so the "have I been tried" state survives
    worker-process boundaries and the retry lands on a clean slate.
    """
    x, marker_dir = arg
    marker = Path(marker_dir) / f"attempted-{x}"
    if not marker.exists():
        marker.touch()
        raise RuntimeError(f"transient failure on item {x}")
    return x + 100


def interrupt_at_three(x: int) -> int:
    if x == 3:
        raise KeyboardInterrupt
    return x


class TestPolicyValidation:
    def test_rejects_zero_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            SupervisorPolicy(task_timeout=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorPolicy(max_retries=-1)


class TestWorkerDeathRecovery:
    def test_kill_chaos_matches_serial(self):
        """Seeded worker kills are retried to a bit-identical result."""
        items = list(range(10))
        chaos = ChaosConfig(seed=3, kill_rate=0.5)
        # The plan must actually kill something, or this test is vacuous.
        assert any(chaos.decision(i, 0) == "kill" for i in range(len(items)))

        serial = map_tasks(square, items, jobs=1)
        chaotic = map_tasks(square, items, jobs=3, chaos=chaos)
        assert chaotic.values == serial.values
        assert chaotic.ok
        assert chaotic.num_retries > 0
        assert chaotic.num_respawns > 0

    def test_death_with_no_retries_quarantines(self):
        """kill_rate=1 + max_retries=0: every cell dies and is recorded."""
        report = map_tasks(
            square,
            list(range(3)),
            jobs=2,
            chaos=ChaosConfig(seed=0, kill_rate=1.0),
            max_retries=0,
            strict=False,
        )
        assert not report.outcomes
        assert len(report.failures) == 3
        assert all(f.kind == "worker-death" for f in report.failures)
        assert all(f.attempts == 1 for f in report.failures)
        assert all(f.worker_pid is None for f in report.failures)

    def test_strict_death_raises_sweep_failed(self):
        with pytest.raises(SweepFailedError, match="failed permanently"):
            map_tasks(
                square,
                list(range(3)),
                jobs=2,
                chaos=ChaosConfig(seed=0, kill_rate=1.0),
                max_retries=0,
            )


class TestHangRecovery:
    def test_hung_tasks_are_reaped_and_retried(self):
        """A wedged worker is killed at the task timeout, then retried."""
        items = list(range(6))
        chaos = ChaosConfig(seed=2, hang_rate=0.4, hang_seconds=30.0)
        assert any(chaos.decision(i, 0) == "hang" for i in range(len(items)))

        serial = map_tasks(square, items, jobs=1)
        recovered = map_tasks(
            square, items, jobs=2, chaos=chaos, task_timeout=1.0
        )
        assert recovered.values == serial.values
        assert recovered.ok
        assert recovered.num_respawns >= 1

    def test_persistent_hang_quarantines_as_timeout(self):
        report = map_tasks(
            square,
            list(range(2)),
            jobs=2,
            chaos=ChaosConfig(seed=0, hang_rate=1.0, hang_seconds=30.0),
            task_timeout=0.5,
            max_retries=0,
            strict=False,
        )
        assert not report.outcomes
        assert len(report.failures) == 2
        assert all(f.kind == "timeout" for f in report.failures)
        assert all("timeout" in f.error for f in report.failures)


class TestPoisonQuarantine:
    def test_strict_raises_with_structured_failures(self):
        with pytest.raises(SweepFailedError) as excinfo:
            map_tasks(double_or_poison, [1, 2, -3, 4], jobs=2, max_retries=1)
        report = excinfo.value.report
        assert [f.index for f in report.failures] == [2]
        failure = report.failures[0]
        assert failure.kind == "exception"
        assert "ValueError" in failure.error and "poison item -3" in failure.error
        assert "double_or_poison" in failure.traceback
        assert failure.attempts == 2  # first try + one retry
        assert failure.worker_pid is not None  # in-worker raise keeps the pid
        # The healthy cells still completed alongside the poison one.
        assert [o.index for o in report.outcomes] == [0, 1, 3]

    def test_degraded_completion_returns_partial_report(self):
        report = map_tasks(
            double_or_poison, [1, 2, -3, 4], jobs=2, max_retries=1, strict=False
        )
        assert not report.ok
        assert report.values == [2, 4, 8]
        assert [f.index for f in report.failures] == [2]

    def test_serial_path_quarantines_after_one_attempt(self):
        report = map_tasks(double_or_poison, [1, -2, 3], jobs=1, strict=False)
        assert report.values == [2, 6]
        assert [f.index for f in report.failures] == [1]
        assert report.failures[0].attempts == 1

    def test_transient_failure_survives_on_retry(self, tmp_path):
        items = [(i, str(tmp_path)) for i in range(4)]
        report = map_tasks(flaky_once, items, jobs=2, max_retries=2)
        assert report.values == [100, 101, 102, 103]
        assert all(o.attempt == 1 for o in report.outcomes)
        assert report.num_retries == 4


class TestInterruption:
    def test_interrupt_returns_partial_run(self):
        """KeyboardInterrupt mid-loop yields a report, not an exception."""
        seen: list[int] = []

        def interrupt_after_first(outcome):
            seen.append(outcome.index)
            raise KeyboardInterrupt

        run = run_supervised(
            square,
            list(enumerate(range(6))),
            jobs=2,
            policy=SupervisorPolicy(),
            on_complete=interrupt_after_first,
        )
        assert run.interrupted
        assert not run.failures
        assert len(run.outcomes) >= 1
        assert seen[0] in run.outcomes

    def test_serial_interrupt_returns_completed_prefix(self):
        report = map_tasks(interrupt_at_three, list(range(6)), jobs=1)
        assert report.interrupted
        assert not report.ok
        # strict=True must NOT raise for an interrupted run — the
        # partial report is the contract, so the caller can resume.
        assert [o.index for o in report.outcomes] == [0, 1, 2]
        assert not report.failures
