"""Tests for the event-driven fleet simulator, routers and config API."""

from __future__ import annotations

import pytest

from repro.api import ServingConfig, build_engine, clone_requests, simulate
from repro.cluster.cluster import ClusterResult, simulate_cluster
from repro.cluster.fleet import (
    AdmissionPolicy,
    FaultSchedule,
    FleetConfig,
    FleetResult,
    ReplicaFault,
    simulate_fleet,
)
from repro.cluster.router import (
    LeastOutstandingTokensRouter,
    LeastTokensRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    SloAwareRouter,
    as_fleet_router,
)
from repro.metrics.goodput import RequestSLO, fleet_goodput
from repro.telemetry.fleet import fleet_rows, replica_utilization_rows
from repro.types import PreemptionMode, SchedulerKind

from tests.conftest import make_request

# The static-partition golden tests exercise the deprecated
# simulate_cluster shim on purpose; the warning itself is pinned in
# tests/test_cluster.py.
pytestmark = pytest.mark.filterwarnings(
    "ignore:simulate_cluster is deprecated:DeprecationWarning"
)


def _trace(n=24, gap=0.02, prompt_len=1500, output_len=20):
    return [
        make_request(prompt_len=prompt_len, output_len=output_len, arrival_time=gap * i)
        for i in range(n)
    ]


def _record_key(record):
    return (
        record.stage,
        record.start,
        record.end,
        record.num_prefill_tokens,
        record.num_decode_tokens,
        record.num_prefill_seqs,
        record.num_decode_seqs,
    )


class TestSingleReplicaEquivalence:
    def test_simulate_is_one_replica_fleet_bit_for_bit(self, tiny_deployment):
        trace = _trace()
        engine = build_engine(tiny_deployment, ServingConfig())
        mono = engine.run(clone_requests(trace))

        result, _ = simulate(tiny_deployment, ServingConfig(), trace)

        assert result.makespan == mono.makespan
        assert [_record_key(r) for r in result.records] == [
            _record_key(r) for r in mono.records
        ]
        for ours, theirs in zip(result.requests, mono.requests):
            assert ours.request_id == theirs.request_id
            assert ours.token_times == theirs.token_times
            assert ours.finished_at == theirs.finished_at
            assert ours.first_scheduled_at == theirs.first_scheduled_at

    def test_simulate_max_time_matches_engine(self, tiny_deployment):
        trace = _trace()
        full = build_engine(tiny_deployment, ServingConfig()).run(clone_requests(trace))
        cutoff = full.makespan / 2
        mono = build_engine(tiny_deployment, ServingConfig()).run(
            clone_requests(trace), max_time=cutoff
        )
        assert mono.unfinished  # the cutoff actually bites
        result, _ = simulate(tiny_deployment, ServingConfig(), trace, max_time=cutoff)
        assert result.makespan == mono.makespan
        assert len(result.finished_requests) == len(mono.finished_requests)
        assert len(result.unfinished) == len(mono.unfinished)


class TestStaticPartitionGolden:
    def _reference(self, deployment, config, requests, num_replicas, router):
        """The pre-fleet static-partition algorithm, verbatim."""
        cloned = clone_requests(requests)
        per_replica = [[] for _ in range(num_replicas)]
        for request in sorted(cloned, key=lambda r: r.arrival_time):
            per_replica[router.route(request)].append(request)
        results = []
        for assigned in per_replica:
            if not assigned:
                continue
            engine = build_engine(deployment, config)
            results.append(engine.run(assigned))
        return results

    def test_zero_fault_round_robin_matches_static_partition(self, tiny_deployment):
        trace = _trace()
        reference = self._reference(
            tiny_deployment, ServingConfig(), trace, 2, RoundRobinRouter(2)
        )
        fleet_result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=2),
            router=RoundRobinRouter(2),
        )
        assert len(reference) == len(fleet_result.replica_results) == 2
        for ref, ours in zip(reference, fleet_result.replica_results):
            assert [_record_key(r) for r in ours.records] == [
                _record_key(r) for r in ref.records
            ]
            assert [r.request_id for r in ours.requests] == [
                r.request_id for r in ref.requests
            ]
            for ref_req, our_req in zip(ref.requests, ours.requests):
                assert our_req.token_times == ref_req.token_times
                assert our_req.finished_at == ref_req.finished_at

    def test_cluster_shim_still_matches_old_semantics(self, tiny_deployment):
        trace = _trace()
        reference = self._reference(
            tiny_deployment, ServingConfig(), trace, 3, LeastTokensRouter(3)
        )
        result, metrics = simulate_cluster(
            tiny_deployment, ServingConfig(), trace, num_replicas=3
        )
        merged = result.merged()
        ref_requests = [r for res in reference for r in res.requests]
        assert sorted(r.finished_at for r in merged.requests) == sorted(
            r.finished_at for r in ref_requests
        )
        assert merged.makespan == max(r.makespan for r in reference)
        assert metrics.num_requests == len(trace)

    def test_cluster_shim_accepts_max_time_and_exec_model(self, tiny_deployment):
        from repro.api import execution_model_for

        config = ServingConfig()
        exec_model = execution_model_for(tiny_deployment, config)
        trace = _trace()
        result, _ = simulate_cluster(
            tiny_deployment,
            config,
            trace,
            num_replicas=2,
            max_time=0.2,
            exec_model=exec_model,
        )
        merged = result.merged()
        assert merged.makespan <= 0.2 + 1e-9 or merged.unfinished
        assert exec_model.cache_stats.misses > 0  # the shared model was used


class TestFaultInjection:
    def test_crash_mid_trace_loses_nothing(self, tiny_deployment):
        trace = _trace()
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=3, faults=FaultSchedule.single(1, down_at=0.3)),
            router=RoundRobinRouter(3),
        )
        assert not result.lost_requests()
        assert len(result.finished_requests) == len(trace)
        assert result.num_failovers > 0
        assert result.num_restarts > 0
        kinds = [e.kind for e in result.events]
        assert "fault_down" in kinds and "failover" in kinds

    def test_restored_replica_serves_again(self, tiny_deployment):
        trace = _trace(n=40, gap=0.05)
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(
                num_replicas=2,
                faults=FaultSchedule.single(0, down_at=0.3, up_at=0.6),
            ),
            router=RoundRobinRouter(2),
        )
        assert not result.lost_requests()
        up_times = [e.time for e in result.events if e.kind == "fault_up"]
        assert up_times == [0.6]
        routed_after_up = [
            e
            for e in result.events
            if e.kind == "route" and e.replica == 0 and e.time >= 0.6
        ]
        assert routed_after_up  # round-robin sends it work again

    def test_failover_counts_prefill_restarts(self, tiny_deployment):
        trace = _trace(n=8, gap=0.0)  # everything in flight immediately
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=2, faults=FaultSchedule.single(0, down_at=0.05)),
            router=RoundRobinRouter(2),
        )
        assert result.num_restarts >= 1
        assert sum(r.num_restarts for r in result.requests) == result.num_restarts

    def test_all_replicas_down_sheds_after_retries(self, tiny_deployment):
        from repro.cluster.fleet import FleetSimulator

        simulator = FleetSimulator(
            tiny_deployment,
            ServingConfig(),
            FleetConfig(
                num_replicas=1,
                faults=FaultSchedule.single(0, down_at=0.0),
                max_retries=2,
            ),
        )
        result = simulator.run([make_request(arrival_time=0.2)])
        assert result.num_shed == 1
        assert not result.lost_requests()
        shed_events = [e for e in result.events if e.kind == "shed"]
        assert shed_events[0].reason == "retries_exhausted"
        rejects = [e for e in result.events if e.kind == "reject"]
        assert all(e.reason == "no_alive_replica" for e in rejects)

    def test_fault_schedule_validation(self):
        with pytest.raises(ValueError, match="up_at"):
            ReplicaFault(0, down_at=1.0, up_at=0.5)
        with pytest.raises(ValueError, match="targets replica"):
            FaultSchedule.single(5, down_at=1.0).validate(2)

    def test_fault_schedule_rejects_overlaps(self):
        # Two holes in time on the same replica must not intersect: the
        # second down_at would crash an already-down slot.
        with pytest.raises(ValueError, match="overlapping faults on replica 1"):
            FaultSchedule(
                faults=(
                    ReplicaFault(1, down_at=0.5, up_at=2.0),
                    ReplicaFault(1, down_at=1.0, up_at=3.0),
                )
            ).validate(2)
        # A fault that never recovers overlaps everything after it.
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule(
                faults=(
                    ReplicaFault(0, down_at=1.0),
                    ReplicaFault(0, down_at=5.0, up_at=6.0),
                )
            ).validate(2)
        # Declaration order must not matter: the same overlap listed
        # later-fault-first is still caught.
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule(
                faults=(
                    ReplicaFault(0, down_at=5.0, up_at=6.0),
                    ReplicaFault(0, down_at=1.0),
                )
            ).validate(2)
        # Back-to-back faults and cross-replica overlap stay legal.
        FaultSchedule(
            faults=(
                ReplicaFault(0, down_at=1.0, up_at=2.0),
                ReplicaFault(0, down_at=2.0, up_at=3.0),
                ReplicaFault(1, down_at=1.5, up_at=2.5),
            )
        ).validate(2)

    def test_poisson_schedule_deterministic(self):
        a = FaultSchedule.poisson(4, rate=0.3, mean_downtime=2.0, horizon=30.0, seed=3)
        b = FaultSchedule.poisson(4, rate=0.3, mean_downtime=2.0, horizon=30.0, seed=3)
        assert a == b
        assert FaultSchedule.poisson(4, rate=0.0, mean_downtime=2.0, horizon=30.0) == (
            FaultSchedule()
        )


def _overload_trace():
    """Arrivals dense enough that bounded queues actually fill."""
    return _trace(n=24, gap=0.01, prompt_len=2000, output_len=30)


class TestOverloadControl:
    def test_shed_policy_conserves_requests(self, tiny_deployment):
        trace = _overload_trace()
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(
                num_replicas=2, max_queue_depth=2, admission=AdmissionPolicy.SHED
            ),
        )
        assert result.num_shed > 0
        assert len(result.finished_requests) + result.num_shed == len(trace)
        assert not result.lost_requests()

    def test_reject_policy_retries_then_finishes(self, tiny_deployment):
        trace = _overload_trace()
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(
                num_replicas=2, max_queue_depth=2, admission=AdmissionPolicy.REJECT
            ),
        )
        assert result.num_rejections > 0
        retried = [e for e in result.events if e.kind == "reject" and e.retry_at]
        assert retried
        assert all(e.retry_at > e.time for e in retried)
        assert len(result.finished_requests) + result.num_shed == len(trace)

    def test_spill_prefers_open_replica(self, tiny_deployment):
        trace = _overload_trace()
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(
                num_replicas=2, max_queue_depth=2, admission=AdmissionPolicy.SPILL
            ),
        )
        assert len(result.finished_requests) + result.num_shed == len(trace)

    def test_admission_timeout_sheds(self, tiny_deployment):
        trace = _trace(n=12, gap=0.0)
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(
                num_replicas=1,
                max_queue_depth=1,
                admission=AdmissionPolicy.REJECT,
                max_retries=50,
                admission_timeout=0.01,
            ),
        )
        timeouts = [e for e in result.events if e.reason == "timeout"]
        assert timeouts
        assert len(result.finished_requests) + result.num_shed == len(trace)

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError, match="num_replicas"):
            FleetConfig(num_replicas=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            FleetConfig(max_queue_depth=0)
        with pytest.raises(ValueError, match="admission policy"):
            FleetConfig(admission="teleport")
        with pytest.raises(ValueError, match="retry_backoff"):
            FleetConfig(retry_backoff=0)
        # Strings coerce to the enum.
        assert FleetConfig(admission="shed").admission is AdmissionPolicy.SHED


class TestFleetRouters:
    def _snap(self, index, alive=True, outstanding=0, queue=0, p99=None):
        return ReplicaSnapshot(
            index=index,
            alive=alive,
            queue_depth=queue,
            num_running=0,
            num_pending=0,
            outstanding_tokens=outstanding,
            kv_occupancy=0.0,
            recent_p99_tbt=p99,
        )

    def test_least_outstanding_picks_lightest(self):
        router = LeastOutstandingTokensRouter(3)
        snaps = [
            self._snap(0, outstanding=500),
            self._snap(1, outstanding=100),
            self._snap(2, outstanding=300),
        ]
        assert router.route(make_request(), 0.0, snaps) == 1

    def test_least_outstanding_skips_dead(self):
        router = LeastOutstandingTokensRouter(2)
        snaps = [self._snap(0, alive=False), self._snap(1, outstanding=9999)]
        assert router.route(make_request(), 0.0, snaps) == 1

    def test_slo_aware_avoids_degraded(self):
        router = SloAwareRouter(2, tbt_slo=0.1)
        snaps = [
            self._snap(0, outstanding=10, p99=0.5),   # violating
            self._snap(1, outstanding=1000, p99=0.05),
        ]
        assert router.route(make_request(), 0.0, snaps) == 1

    def test_slo_aware_falls_back_when_all_degraded(self):
        router = SloAwareRouter(2, tbt_slo=0.1)
        snaps = [
            self._snap(0, outstanding=10, p99=0.5),
            self._snap(1, outstanding=1000, p99=0.9),
        ]
        assert router.route(make_request(), 0.0, snaps) == 0

    def test_as_fleet_router_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_fleet_router(object())

    def test_state_blind_router_failover_on_dead_pick(self, tiny_deployment):
        trace = _trace(n=10)
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=2, faults=FaultSchedule.single(0, down_at=0.0)),
            router=RoundRobinRouter(2),
        )
        # Every delivery landed on the surviving replica.
        routed = [e.replica for e in result.events if e.kind == "route"]
        assert routed and all(r == 1 for r in routed)

    def test_slo_aware_end_to_end(self, tiny_deployment):
        trace = _trace()
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=2),
            router=SloAwareRouter(2, tbt_slo=0.05),
        )
        assert len(result.finished_requests) == len(trace)


class TestDeterminism:
    def test_identical_runs_identical_everything(self, tiny_deployment):
        trace = _trace()
        fleet_config = FleetConfig(
            num_replicas=3,
            faults=FaultSchedule.single(1, down_at=0.2, up_at=0.5),
            max_queue_depth=4,
        )

        def run():
            return simulate_fleet(
                tiny_deployment,
                ServingConfig(),
                trace,
                fleet_config,
                router=RoundRobinRouter(3),
            )

        (res_a, met_a), (res_b, met_b) = run(), run()
        assert res_a.events == res_b.events
        assert res_a.assignments == res_b.assignments
        assert res_a.makespan == res_b.makespan
        assert met_a == met_b
        for req_a, req_b in zip(res_a.requests, res_b.requests):
            assert req_a.token_times == req_b.token_times


class TestFleetTelemetryAndMetrics:
    def _faulted_run(self, tiny_deployment):
        trace = _trace()
        return simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=2, faults=FaultSchedule.single(0, down_at=0.2)),
            router=RoundRobinRouter(2),
        )

    def test_fleet_rows_cover_all_events(self, tiny_deployment):
        result, _ = self._faulted_run(tiny_deployment)
        rows = fleet_rows(result)
        assert len(rows) == len(result.events)
        assert {"route", "fault_down"} <= {row["kind"] for row in rows}

    def test_fleet_rows_serialize(self, tiny_deployment, tmp_path):
        from repro.telemetry import write_jsonl, read_jsonl

        result, _ = self._faulted_run(tiny_deployment)
        path = write_jsonl(tmp_path / "fleet.jsonl", fleet_rows(result))
        assert read_jsonl(path) == fleet_rows(result)

    def test_replica_utilization_timeline(self, tiny_deployment):
        result, _ = self._faulted_run(tiny_deployment)
        rows = replica_utilization_rows(result, bucket=0.1)
        assert {row["replica"] for row in rows} == {0, 1}
        assert all(0.0 <= row["busy_fraction"] <= 1.0 + 1e-9 for row in rows)
        # The crashed replica does no work after going down.
        late_dead = [
            r for r in rows if r["replica"] == 0 and r["bucket_start"] >= 0.3
        ]
        assert all(r["busy_fraction"] == 0.0 for r in late_dead)

    def test_fleet_goodput_charges_shed(self, tiny_deployment):
        trace = _overload_trace()
        result, _ = simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(
                num_replicas=1, max_queue_depth=2, admission=AdmissionPolicy.SHED
            ),
        )
        assert result.num_shed > 0
        report = fleet_goodput(
            result, RequestSLO(ttft_deadline=60.0, tbt_deadline=60.0)
        )
        assert report.num_offered == len(trace)
        assert report.num_attained == report.num_finished  # generous SLO
        assert report.attainment < 1.0  # shed requests count against it
        assert report.shed_fraction == result.num_shed / len(trace)

    def test_merged_empty_cluster_result(self):
        merged = ClusterResult(replica_results=[], assignments=[]).merged()
        assert merged.requests == [] and merged.records == []
        assert merged.makespan == 0.0 and merged.num_stages == 0


class TestFleetApi:
    def test_empty_trace_rejected(self, tiny_deployment):
        with pytest.raises(ValueError, match="at least one request"):
            simulate_fleet(tiny_deployment, ServingConfig(), [])

    def test_router_mismatch_rejected(self, tiny_deployment):
        with pytest.raises(ValueError, match="router is configured"):
            simulate_fleet(
                tiny_deployment,
                ServingConfig(),
                _trace(n=4),
                FleetConfig(num_replicas=3),
                router=RoundRobinRouter(2),
            )

    def test_input_trace_not_mutated(self, tiny_deployment):
        trace = _trace(n=6)
        simulate_fleet(
            tiny_deployment,
            ServingConfig(),
            trace,
            FleetConfig(num_replicas=2, faults=FaultSchedule.single(0, down_at=0.1)),
        )
        assert all(r.prefill_done == 0 and r.num_restarts == 0 for r in trace)

    def test_result_is_fleet_result(self, tiny_deployment):
        result, metrics = simulate_fleet(
            tiny_deployment, ServingConfig(), _trace(n=4)
        )
        assert isinstance(result, FleetResult)
        assert metrics.num_requests == 4
        assert result.cache_stats is not None  # perf cache on by default


class TestServingConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("token_budget", 0),
            ("token_budget", -5),
            ("max_batch_size", 0),
            ("block_size", -1),
            ("reserve_len", 0),
            ("max_inflight_batches", 0),
            ("tbt_slo", 0.0),
            ("tbt_slo", -1.0),
            ("perf_cache_max_entries", 0),
        ],
    )
    def test_bad_values_raise_with_field_name(self, field, value):
        with pytest.raises(ValueError, match=field):
            ServingConfig(**{field: value})

    def test_unknown_preemption_mode_raises_at_construction(self):
        with pytest.raises(ValueError, match="preemption_mode"):
            ServingConfig(preemption_mode="teleport")

    def test_preemption_mode_normalized_to_enum(self):
        config = ServingConfig(preemption_mode="swap")
        assert config.preemption_mode is PreemptionMode.SWAP
        assert config.preemption_mode == "swap"  # str mixin compatibility

    def test_valid_config_still_constructs(self):
        config = ServingConfig(
            scheduler=SchedulerKind.SARATHI, token_budget=256, tbt_slo=0.2
        )
        assert config.token_budget == 256

    def test_preemption_mode_parse_error_lists_choices(self):
        with pytest.raises(ValueError, match="recompute"):
            PreemptionMode.parse("magic")
        assert PreemptionMode.parse("swap") is PreemptionMode.SWAP
        assert PreemptionMode.parse(PreemptionMode.RECOMPUTE) is (
            PreemptionMode.RECOMPUTE
        )
