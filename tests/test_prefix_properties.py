"""Property tests for the shared-block allocator (Hypothesis).

A random interleaving of admissions, decode growth, frees and direct
store eviction must preserve, at every step:

* **Conservation** — free + exclusive + shared blocks == total blocks.
* **Reference safety** — no block is reclaimed while a running request
  references it (an entry with refcount > 0 is never evicted).
* **Claim immutability** — a claim never changes an entry's published
  coverage; the owner set changes only via claim/release.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.block_manager import PagedBlockManager
from repro.memory.prefix import SharedPrefixStore
from repro.types import Request

BS = 16
NUM_BLOCKS = 24  # tight pool so eviction pressure actually happens


def _conserved(manager: PagedBlockManager, store: SharedPrefixStore) -> bool:
    exclusive = sum(manager._allocated.values())
    return (
        manager.free_blocks + exclusive + store.shared_blocks
        == manager.num_blocks
    )


class _Driver:
    """Applies one random op; keeps live requests for follow-up ops."""

    def __init__(self) -> None:
        self.store = SharedPrefixStore(block_size=BS)
        self.manager = PagedBlockManager(
            NUM_BLOCKS * BS, block_size=BS, watermark=0.0, prefix_store=self.store
        )
        self.live: list[Request] = []

    def admit(self, prefix_id: int, prompt_blocks: int, output_len: int) -> None:
        prompt_len = prompt_blocks * BS + (prefix_id % BS)
        request = Request(
            prompt_len=prompt_len,
            output_len=output_len,
            prefix_id=prefix_id,
            prefix_len=prompt_len,
        )
        if not self.manager.can_admit(request):
            return
        self.manager.admit(request)
        request.record_prefill(request.remaining_prefill, now=1.0)
        self.live.append(request)

    def decode(self, index: int) -> None:
        if not self.live:
            return
        request = self.live[index % len(self.live)]
        if request.is_finished:
            return
        if not self.manager.can_append_token(request):
            return
        self.manager.append_token(request)
        request.record_decode(now=2.0)

    def free(self, index: int, finish_first: bool) -> None:
        if not self.live:
            return
        request = self.live.pop(index % len(self.live))
        if finish_first:
            while not request.is_finished:
                if self.manager.can_append_token(request):
                    self.manager.append_token(request)
                request.record_decode(now=3.0)
        self.manager.free(request)

    def evict(self, blocks: int) -> None:
        reclaimed = self.store.evict_for(blocks)
        self.manager._free_blocks += reclaimed


op_strategy = st.one_of(
    st.tuples(
        st.just("admit"),
        st.integers(min_value=0, max_value=5),    # prefix id (collisions wanted)
        st.integers(min_value=1, max_value=6),    # prompt blocks
        st.integers(min_value=1, max_value=2 * BS),
    ),
    st.tuples(st.just("decode"), st.integers(min_value=0, max_value=63)),
    st.tuples(
        st.just("free"), st.integers(min_value=0, max_value=63), st.booleans()
    ),
    st.tuples(st.just("evict"), st.integers(min_value=1, max_value=8)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=60))
def test_conservation_and_reference_safety(ops):
    driver = _Driver()
    for op in ops:
        referenced_before = {
            pid: driver.store.entry_tokens(pid)
            for pid in range(6)
            if driver.store.entry_refcount(pid) > 0
        }
        if op[0] == "admit":
            driver.admit(op[1], op[2], op[3])
        elif op[0] == "decode":
            driver.decode(op[1])
        elif op[0] == "free":
            driver.free(op[1], op[2])
        else:
            driver.evict(op[1])
        # Conservation holds after every single operation.
        assert _conserved(driver.manager, driver.store)
        # Entries that were referenced before the op still cover at
        # least what their claimants saw (eviction never touched them;
        # registration may have extended them).
        for pid, tokens in referenced_before.items():
            if op[0] != "free":  # free may drop the last reference
                assert driver.store.entry_tokens(pid) >= tokens
        # The store's owner sets exactly mirror the manager's claims.
        claims_by_entry: dict[int, list[int]] = {}
        for rid, (pid, _blocks) in driver.manager._claims.items():
            claims_by_entry.setdefault(pid, []).append(rid)
        for pid in range(6):
            owners = sorted(driver.store.entry_owners(pid))
            assert owners == sorted(claims_by_entry.get(pid, []))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),   # published blocks
    st.integers(min_value=1, max_value=400),  # claimant prefix_len
    st.integers(min_value=2, max_value=400),  # claimant prefill target
)
def test_claims_never_mutate_published_coverage(blocks, prefix_len, target):
    store = SharedPrefixStore(block_size=BS)
    store.register(1, prefix_len=0, publish_tokens=blocks * BS)
    tokens_before = store.entry_tokens(1)
    shared_before = store.shared_blocks
    cached = store.claim(1, prefix_len=prefix_len, prefill_target=target, owner=9)
    assert store.entry_tokens(1) == tokens_before
    assert store.shared_blocks == shared_before
    assert cached <= tokens_before
    assert cached % BS == 0
    assert cached < target  # at least one token is always prefetched
    if cached:
        assert store.entry_owners(1) == (9,)
        store.release(1, owner=9)
    assert store.entry_owners(1) == ()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_eviction_only_reclaims_unreferenced(data):
    store = SharedPrefixStore(block_size=BS)
    num_entries = data.draw(st.integers(min_value=1, max_value=8))
    claimed = set()
    for pid in range(num_entries):
        store.register(pid, prefix_len=0, publish_tokens=BS)
        if data.draw(st.booleans()):
            store.claim(pid, prefix_len=BS, prefill_target=2 * BS, owner=pid)
            claimed.add(pid)
    demand = data.draw(st.integers(min_value=1, max_value=16))
    reclaimed = store.evict_for(demand)
    assert reclaimed <= num_entries - len(claimed)
    for pid in claimed:
        assert store.entry_tokens(pid) == BS
        assert store.entry_refcount(pid) == 1
