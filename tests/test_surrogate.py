"""Surrogate-guided capacity search: savings without influence.

The contract under test (DESIGN.md §13): a surrogate prediction — or
any ``qps_hint``, however wrong — may change how many probes
``find_capacity`` spends, but never which capacity it returns, because
every probe lands on the same global QPS ladder and the winning rung
is always verified by full simulation.  The property tests drive that
with synthetic monotone oracles under hypothesis; the engine tests
check it end-to-end on real simulations, object and vectorized.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Deployment, ServingConfig
from repro.experiments.capacity_runner import (
    CapacityCellSpec,
    cell_features,
    measure_capacity,
    run_capacity_cells,
)
from repro.experiments.common import Scale
from repro.hardware.catalog import A100_80G
from repro.metrics.capacity import find_capacity, ladder_qps, ladder_rung
from repro.metrics.slo import SLOSpec, derived_slo
from repro.models.catalog import YI_34B
from repro.parallel.config import ParallelConfig
from repro.perf.surrogate import SurrogateStore, split_features
from repro.types import SchedulerKind
from repro.workload.datasets import get_dataset

pytestmark = pytest.mark.tier1

SLO = SLOSpec(name="t", p99_tbt=1.0)


class _StubMetrics:
    """The only thing find_capacity asks of a run: does it meet the SLO."""

    def __init__(self, ok: bool) -> None:
        self._ok = ok

    def meets(self, slo: SLOSpec) -> bool:
        return self._ok


# ----------------------------------------------------------------------
# Property: hints (surrogate or otherwise) never change the answer
# ----------------------------------------------------------------------
@given(
    threshold_rung=st.integers(min_value=-30, max_value=30),
    hint=st.one_of(
        st.none(), st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
    ),
    rel_tol=st.sampled_from([0.05, 0.10, 0.25]),
)
@settings(max_examples=80, deadline=None)
def test_wrong_hint_widens_search_but_not_the_answer(
    threshold_rung, hint, rel_tol
):
    """A monotone oracle feasible up to a ladder rung: any starting
    hint must converge to exactly that rung's QPS."""
    threshold = ladder_qps(threshold_rung, rel_tol) * (1 + rel_tol / 4)

    def run(qps):
        return _StubMetrics(qps <= threshold)

    baseline = find_capacity(run, SLO, rel_tol=rel_tol, max_probes=200)
    seeded = find_capacity(
        run, SLO, rel_tol=rel_tol, max_probes=200, qps_hint=hint
    )
    assert baseline.capacity_qps == ladder_qps(threshold_rung, rel_tol)
    assert seeded.capacity_qps == baseline.capacity_qps
    # A perfect hint collapses bracketing to the two boundary probes.
    perfect = find_capacity(
        run,
        SLO,
        rel_tol=rel_tol,
        max_probes=200,
        qps_hint=baseline.capacity_qps,
    )
    assert perfect.capacity_qps == baseline.capacity_qps
    assert perfect.num_probes <= 3


@given(
    hint=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    rel_tol=st.sampled_from([0.10, 0.25]),
)
@settings(max_examples=30, deadline=None)
def test_hint_cannot_conjure_capacity_from_nothing(hint, rel_tol):
    """Always-infeasible oracle: every hint still reports zero."""

    def run(qps):
        return _StubMetrics(False)

    result = find_capacity(run, SLO, rel_tol=rel_tol, max_probes=200, qps_hint=hint)
    assert result.capacity_qps == 0.0


# ----------------------------------------------------------------------
# The surrogate store
# ----------------------------------------------------------------------
def _features(**overrides):
    base = {
        "model": "Tiny-1B",
        "gpu": "A100-80G",
        "tp": 1,
        "pp": 1,
        "scheduler": "sarathi",
        "token_budget": 512,
        "max_batch_size": 128,
        "dataset": "openchat_sharegpt4",
        "slo": "strict",
        "p99_tbt": 0.1,
        "num_requests": 64,
        "seed": 0,
        "rel_tol": 0.1,
    }
    base.update(overrides)
    return base


class TestSurrogateStore:
    def test_exact_replay_roundtrips_through_disk(self, tmp_path):
        path = tmp_path / "surrogate.json"
        store = SurrogateStore(path)
        store.observe(_features(), 2.5)
        store.observe(_features(scheduler="vllm"), 0.8)
        store.save()
        reloaded = SurrogateStore(path)
        assert len(reloaded) == 2
        assert reloaded.predict(_features()) == 2.5
        assert reloaded.predict(_features(scheduler="vllm")) == 0.8

    def test_unknown_cell_with_no_bridges_predicts_none(self):
        store = SurrogateStore()
        assert store.predict(_features()) is None
        store.observe(_features(), 2.5)
        # Different context, no shared variants elsewhere: still clueless.
        assert store.predict(_features(model="Yi-34B", scheduler="orca")) is None

    def test_zero_capacity_observation_predicts_none(self):
        store = SurrogateStore()
        store.observe(_features(), 0.0)
        assert store.predict(_features()) is None

    def test_ratio_transfer_recovers_multiplicative_structure(self):
        # cap(ctx, var) = c_ctx * v_var: the bridge estimate is exact.
        store = SurrogateStore()
        contexts = {"Tiny-1B": 1.0, "Yi-34B": 0.25}
        variants = {"sarathi": 2.0, "vllm": 0.5}
        for model, c in contexts.items():
            for sched, v in variants.items():
                if model == "Yi-34B" and sched == "sarathi":
                    continue  # the cell we want predicted
                store.observe(_features(model=model, scheduler=sched), c * v)
        predicted = store.predict(_features(model="Yi-34B", scheduler="sarathi"))
        assert predicted == pytest.approx(0.25 * 2.0)

    def test_corrupt_store_loads_empty(self, tmp_path):
        path = tmp_path / "surrogate.json"
        path.write_text("{ not json")
        store = SurrogateStore(path)
        assert len(store) == 0
        assert store.predict(_features()) is None
        store.observe(_features(), 1.0)
        store.save()  # and saving repairs the file
        assert json.loads(path.read_text())["entries"]

    def test_split_features_separates_variant_keys(self):
        ctx, var = split_features(_features())
        assert "scheduler" in var and "slo" in var and "token_budget" in var
        assert "scheduler" not in ctx and "model" in ctx


# ----------------------------------------------------------------------
# End to end on real simulations, both engines
# ----------------------------------------------------------------------
_SCALE = Scale(num_requests=16, capacity_rel_tol=0.3, capacity_max_probes=30, seed=3)


# Yi-34B keeps capacities in the ~1 QPS range, so even badly seeded
# probes simulate a handful of requests rather than thousands.
def _small_deployment() -> Deployment:
    return Deployment(
        model=YI_34B, gpu=A100_80G, parallel=ParallelConfig(tensor_parallel=2)
    )


@pytest.mark.parametrize("engine", ["object", "vectorized"])
@pytest.mark.parametrize(
    "scheduler", [SchedulerKind.SARATHI, SchedulerKind.SARATHI_DYNAMIC]
)
def test_capacity_is_hint_independent_on_both_engines(engine, scheduler):
    deployment = _small_deployment()
    slo = derived_slo(deployment.execution_model(), strict=True)
    config = ServingConfig(scheduler=scheduler, token_budget=256, engine=engine)
    dataset = get_dataset("openchat_sharegpt4")

    def search(hint):
        kwargs = {} if hint is None else {"qps_hint": hint}
        return measure_capacity(
            deployment,
            scheduler,
            dataset,
            slo,
            _SCALE,
            config=config,
            min_load_duration=1.0,
            **kwargs,
        )

    baseline = search(None)
    assert baseline.capacity_qps > 0
    for wrong_hint in (0.01, 40.0):
        seeded = search(wrong_hint)
        assert seeded.capacity_qps == baseline.capacity_qps


def test_engines_agree_on_capacity():
    deployment = _small_deployment()
    slo = derived_slo(deployment.execution_model(), strict=True)
    dataset = get_dataset("openchat_sharegpt4")
    results = {}
    for engine in ("object", "vectorized"):
        config = ServingConfig(
            scheduler=SchedulerKind.SARATHI_DYNAMIC, engine=engine
        )
        results[engine] = measure_capacity(
            deployment,
            SchedulerKind.SARATHI_DYNAMIC,
            dataset,
            slo,
            _SCALE,
            config=config,
            min_load_duration=1.0,
        )
    assert results["object"].capacity_qps == results["vectorized"].capacity_qps


@pytest.mark.slow
def test_wrong_surrogate_store_cannot_change_grid_capacities():
    """A grid seeded by a deliberately wrong surrogate store converges
    to the same capacities as a surrogate-off run, probe counts aside."""
    deployment = _small_deployment()
    dataset = get_dataset("openchat_sharegpt4")
    scale = Scale(num_requests=16, capacity_rel_tol=0.3, capacity_max_probes=20, seed=3)
    specs = [
        CapacityCellSpec(
            deployment=deployment,
            scheduler=kind,
            dataset=dataset,
            strict=True,
            scale=scale,
        )
        for kind in (SchedulerKind.SARATHI, SchedulerKind.VLLM)
    ]
    baseline = run_capacity_cells(list(specs), surrogate=False)

    wrong = SurrogateStore()
    for spec in specs:
        wrong.observe(cell_features(spec), 37.0)  # absurdly high
    seeded = run_capacity_cells(list(specs), surrogate=True, surrogate_store=wrong)

    assert [o.cell.capacity_qps for o in baseline] == [
        o.cell.capacity_qps for o in seeded
    ]
    assert all(o.hinted for o in seeded)
