"""Tests for the linear, attention and iteration-level perf models.

These encode the paper's §3.1 takeaways as executable assertions: the
shapes (memory-bound decode, compute-bound prefill, hybrid slack) are
what every downstream experiment relies on.
"""

from __future__ import annotations

import pytest

from repro.hardware.catalog import A100_80G
from repro.models.catalog import MISTRAL_7B, YI_34B
from repro.parallel.config import ParallelConfig
from repro.perf.attention import AttentionModel
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.iteration import ExecutionModel
from repro.perf.linear import LinearModel
from repro.types import TokenWork


@pytest.fixture
def mistral_exec() -> ExecutionModel:
    return ExecutionModel(MISTRAL_7B, A100_80G)


@pytest.fixture
def mistral_linear() -> LinearModel:
    return LinearModel(MISTRAL_7B, A100_80G, ParallelConfig(), DEFAULT_CALIBRATION)


@pytest.fixture
def mistral_attention() -> AttentionModel:
    return AttentionModel(MISTRAL_7B, A100_80G, ParallelConfig(), DEFAULT_CALIBRATION)


class TestLinearModel:
    def test_small_batches_memory_bound(self, mistral_linear):
        assert mistral_linear.layer_cost(8).is_memory_bound
        assert mistral_linear.layer_cost(32).is_memory_bound

    def test_large_batches_compute_bound(self, mistral_linear):
        assert not mistral_linear.layer_cost(4096).is_memory_bound

    def test_flat_then_linear_shape(self, mistral_linear):
        """Takeaway-2: time barely moves in the memory-bound regime."""
        t16 = mistral_linear.layer_cost(16).time
        t64 = mistral_linear.layer_cost(64).time
        t2048 = mistral_linear.layer_cost(2048).time
        t4096 = mistral_linear.layer_cost(4096).time
        assert t64 < 1.5 * t16           # near-flat at small counts
        assert t4096 > 1.7 * t2048       # ~linear at large counts

    def test_tp_shrinks_layer_time(self):
        tp1 = LinearModel(YI_34B, A100_80G, ParallelConfig(), DEFAULT_CALIBRATION)
        tp2 = LinearModel(
            YI_34B, A100_80G, ParallelConfig(tensor_parallel=2), DEFAULT_CALIBRATION
        )
        assert tp2.layer_cost(64).time < tp1.layer_cost(64).time

    def test_stage_time_zero_for_empty(self, mistral_linear):
        assert mistral_linear.stage_time(0) == 0.0

    def test_lm_head_adds_time(self, mistral_linear):
        without = mistral_linear.stage_time(128, num_logit_tokens=0)
        with_head = mistral_linear.stage_time(128, num_logit_tokens=8)
        assert with_head > without

    def test_arithmetic_intensity_monotone(self, mistral_linear):
        assert mistral_linear.arithmetic_intensity(8) < mistral_linear.arithmetic_intensity(512)

    def test_weight_bytes_match_config(self, mistral_linear):
        expected = MISTRAL_7B.params_per_layer * 2 * MISTRAL_7B.num_layers
        assert mistral_linear.weight_bytes() == pytest.approx(expected)

    def test_tile_quantization_spike(self):
        """§4.3: chunk 257 costs measurably more math than chunk 256."""
        calib = Calibration(model_tile_quantization=True)
        linear = LinearModel(MISTRAL_7B, A100_80G, ParallelConfig(), calib)
        t256 = linear.layer_cost(256).math_time
        t257 = linear.layer_cost(257).math_time
        assert t257 > 1.2 * t256

    def test_tile_quantization_can_be_disabled(self):
        calib = Calibration(model_tile_quantization=False)
        linear = LinearModel(MISTRAL_7B, A100_80G, ParallelConfig(), calib)
        t256 = linear.layer_cost(256).math_time
        t257 = linear.layer_cost(257).math_time
        assert t257 < 1.05 * t256


class TestAttentionModel:
    def test_decode_attention_scales_with_context(self, mistral_attention):
        short = mistral_attention.work_time(TokenWork.decode(128))
        long = mistral_attention.work_time(TokenWork.decode(4096))
        assert long > short

    def test_prefill_attention_superlinear_in_chunk(self, mistral_attention):
        t512 = mistral_attention.work_time(TokenWork.prefill_chunk(512))
        t2048 = mistral_attention.work_time(TokenWork.prefill_chunk(2048))
        assert t2048 > 3.0 * t512

    def test_later_chunk_costs_more_than_first(self, mistral_attention):
        """Chunked-prefill KV re-reads (§4.3)."""
        first = mistral_attention.work_time(TokenWork.prefill_chunk(512, past_len=0))
        later = mistral_attention.work_time(
            TokenWork.prefill_chunk(512, past_len=3584, is_last=False)
        )
        assert later > first

    def test_kv_read_bytes_scale_with_past(self, mistral_attention):
        a = mistral_attention.kv_read_bytes(TokenWork.prefill_chunk(256, past_len=256))
        b = mistral_attention.kv_read_bytes(TokenWork.prefill_chunk(256, past_len=1024))
        assert b == pytest.approx(4 * a)

    def test_sliding_window_caps_decode_cost(self, mistral_attention):
        at_window = mistral_attention.work_time(TokenWork.decode(4096))
        beyond = mistral_attention.work_time(TokenWork.decode(7168))
        assert beyond == pytest.approx(at_window)

    def test_tp_shards_attention(self):
        tp1 = AttentionModel(YI_34B, A100_80G, ParallelConfig(), DEFAULT_CALIBRATION)
        tp2 = AttentionModel(
            YI_34B, A100_80G, ParallelConfig(tensor_parallel=2), DEFAULT_CALIBRATION
        )
        work = TokenWork.prefill_chunk(2048)
        assert tp2.work_time(work) < tp1.work_time(work)


class TestExecutionModel:
    def test_empty_batch_is_free(self, mistral_exec):
        assert mistral_exec.iteration_time([]).total == 0.0

    def test_prefill_saturates_decode_scales(self, mistral_exec):
        """Takeaway-1 (Fig. 3)."""
        pre1 = mistral_exec.iteration_time([TokenWork.prefill_chunk(1024)]).total
        pre4 = mistral_exec.iteration_time(
            [TokenWork.prefill_chunk(1024) for _ in range(4)]
        ).total
        prefill_scaling = (4 * 1024 / pre4) / (1024 / pre1)
        assert prefill_scaling < 1.3  # throughput saturated at bs=1

        dec1 = mistral_exec.decode_iteration_time(1, 1024).total
        dec16 = mistral_exec.decode_iteration_time(16, 1024).total
        decode_scaling = (16 / dec16) / (1 / dec1)
        assert decode_scaling > 8  # near-linear throughput growth

    def test_hybrid_piggyback_is_cheap(self, mistral_exec):
        """Takeaway-2: decodes ride along with a prefill chunk almost free."""
        chunk_only = mistral_exec.iteration_time([TokenWork.prefill_chunk(512)]).total
        hybrid = mistral_exec.iteration_time(
            [TokenWork.prefill_chunk(512)] + [TokenWork.decode(1024) for _ in range(16)]
        ).total
        assert hybrid < 1.5 * chunk_only

    def test_full_prefill_grows_with_prompt(self, mistral_exec):
        assert (
            mistral_exec.full_prefill_time(4096).total
            > 3 * mistral_exec.full_prefill_time(1024).total
        )

    def test_chunked_prefill_costs_more_total(self, mistral_exec):
        full = mistral_exec.full_prefill_time(4096).total
        chunked = mistral_exec.chunked_prefill_time(4096, 512).total
        assert chunked > full

    def test_chunk_overhead_shrinks_with_chunk_size(self, mistral_exec):
        c512 = mistral_exec.chunked_prefill_time(8192, 512).total
        c2048 = mistral_exec.chunked_prefill_time(8192, 2048).total
        assert c2048 < c512

    def test_chunked_prefill_rejects_bad_chunk(self, mistral_exec):
        with pytest.raises(ValueError):
            mistral_exec.chunked_prefill_time(1024, 0)

    def test_breakdown_components_nonnegative(self, mistral_exec):
        t = mistral_exec.iteration_time(
            [TokenWork.prefill_chunk(256), TokenWork.decode(100)]
        )
        assert t.linear > 0
        assert t.attention > 0
        assert t.others > 0
        assert t.overhead > 0
        assert t.communication == 0.0  # TP1

    def test_linear_dominates_runtime(self, mistral_exec):
        """Fig. 4: linear operators are the majority of iteration time."""
        t = mistral_exec.full_prefill_time(2048)
        assert t.linear > 0.5 * t.total

    def test_tp_comm_appears(self):
        exec_tp2 = ExecutionModel(
            YI_34B, A100_80G, ParallelConfig(tensor_parallel=2)
        )
        t = exec_tp2.iteration_time([TokenWork.prefill_chunk(512)])
        assert t.communication > 0

    def test_pipeline_stage_symmetry(self):
        exec_pp2 = ExecutionModel(
            YI_34B, A100_80G, ParallelConfig(pipeline_parallel=2)
        )
        works = [TokenWork.prefill_chunk(512)]
        first = exec_pp2.stage_iteration_time(works, is_first_stage=True, is_last_stage=False)
        last = exec_pp2.stage_iteration_time(works, is_first_stage=False, is_last_stage=True)
        # First stage pays scheduler overhead; last pays the LM head.
        assert first.overhead > last.overhead
        assert last.linear > first.linear

    def test_pipeline_send_time(self):
        exec_pp2 = ExecutionModel(
            YI_34B, A100_80G, ParallelConfig(pipeline_parallel=2)
        )
        works = [TokenWork.prefill_chunk(2048)]
        assert exec_pp2.pipeline_send_time(works) > 0
        exec_pp1 = ExecutionModel(YI_34B, A100_80G)
        assert exec_pp1.pipeline_send_time(works) == 0.0

    def test_per_replica_gpus(self):
        exec_model = ExecutionModel(
            YI_34B, A100_80G, ParallelConfig(tensor_parallel=4, pipeline_parallel=2)
        )
        assert exec_model.per_replica_gpus() == 8
