"""Tests for multi-replica routing and fleet simulation."""

from __future__ import annotations

import pytest

from repro.api import ServingConfig
from repro.cluster.cluster import simulate_cluster
from repro.cluster.router import LeastTokensRouter, RoundRobinRouter, Router

from tests.conftest import make_request

# simulate_cluster is a deprecated shim over simulate_fleet; these
# tests pin the shim's behavior, so silence the warning suite-wide and
# assert it fires exactly once below.
pytestmark = pytest.mark.filterwarnings(
    "ignore:simulate_cluster is deprecated:DeprecationWarning"
)


class TestDeprecation:
    def test_simulate_cluster_warns(self, tiny_deployment):
        trace = [make_request(prompt_len=64, output_len=4)]
        with pytest.warns(DeprecationWarning, match="simulate_cluster is deprecated"):
            simulate_cluster(tiny_deployment, ServingConfig(), trace, num_replicas=1)

    def test_not_reexported_from_top_level(self):
        import repro

        assert not hasattr(repro, "simulate_cluster")
        assert "simulate_cluster" not in repro.__all__
        # ...but still importable from the subpackage for old callers.
        from repro.cluster import simulate_cluster as shim

        assert shim is simulate_cluster


class TestRouters:
    def test_invalid_replica_count(self):
        with pytest.raises(ValueError):
            RoundRobinRouter(0)

    def test_round_robin_cycles(self):
        router = RoundRobinRouter(3)
        choices = [router.route(make_request()) for _ in range(6)]
        assert choices == [0, 1, 2, 0, 1, 2]

    def test_least_tokens_balances_heavy_tail(self):
        router = LeastTokensRouter(2)
        heavy = make_request(prompt_len=10_000, output_len=100)
        assert router.route(heavy) == 0
        # The next several small requests all avoid the loaded replica.
        for _ in range(5):
            light = make_request(prompt_len=100, output_len=10)
            assert router.route(light) == 1

    def test_least_tokens_eventually_rebalances(self):
        router = LeastTokensRouter(2)
        router.route(make_request(prompt_len=1000, output_len=100))
        total = 0
        while router.route(make_request(prompt_len=200, output_len=20)) == 1:
            total += 220
            assert total < 2000
        assert total > 0


class TestSimulateCluster:
    def _trace(self, n=30, qps_gap=0.05):
        return [
            make_request(prompt_len=128, output_len=6, arrival_time=qps_gap * i)
            for i in range(n)
        ]

    def test_all_requests_finish(self, tiny_deployment):
        result, metrics = simulate_cluster(
            tiny_deployment, ServingConfig(), self._trace(), num_replicas=3
        )
        assert metrics.num_requests == 30
        merged = result.merged()
        assert not merged.unfinished

    def test_single_replica_matches_simulate(self, tiny_deployment):
        from repro.api import simulate

        trace = self._trace()
        _, solo = simulate(tiny_deployment, ServingConfig(), trace)
        _, fleet = simulate_cluster(
            tiny_deployment, ServingConfig(), trace, num_replicas=1
        )
        assert fleet.p99_tbt == pytest.approx(solo.p99_tbt)
        assert fleet.median_ttft == pytest.approx(solo.median_ttft)

    def test_more_replicas_reduce_queueing(self, tiny_deployment):
        trace = [
            make_request(prompt_len=1500, output_len=20, arrival_time=0.02 * i)
            for i in range(40)
        ]
        _, one = simulate_cluster(tiny_deployment, ServingConfig(), trace, 1)
        _, four = simulate_cluster(tiny_deployment, ServingConfig(), trace, 4)
        assert four.median_ttft < one.median_ttft

    def test_input_not_mutated(self, tiny_deployment):
        trace = self._trace()
        simulate_cluster(tiny_deployment, ServingConfig(), trace, num_replicas=2)
        assert all(r.prefill_done == 0 for r in trace)

    def test_router_replica_mismatch_rejected(self, tiny_deployment):
        with pytest.raises(ValueError, match="router is configured"):
            simulate_cluster(
                tiny_deployment,
                ServingConfig(),
                self._trace(),
                num_replicas=3,
                router=RoundRobinRouter(2),
            )

    def test_bad_router_output_rejected(self, tiny_deployment):
        class BadRouter(Router):
            def route(self, request):
                return 99

        with pytest.raises(ValueError, match="invalid replica"):
            simulate_cluster(
                tiny_deployment,
                ServingConfig(),
                self._trace(),
                num_replicas=2,
                router=BadRouter(2),
            )

    def test_empty_trace_rejected(self, tiny_deployment):
        with pytest.raises(ValueError):
            simulate_cluster(tiny_deployment, ServingConfig(), [], num_replicas=2)

    def test_assignments_cover_all_requests(self, tiny_deployment):
        trace = self._trace(n=20)
        result, _ = simulate_cluster(
            tiny_deployment, ServingConfig(), trace, num_replicas=4
        )
        assert len(result.assignments) == 20
        assert all(0 <= a < 4 for a in result.assignments)
