"""Tests for the run ledger (``repro.runtime.ledger``).

The journal's contract: every recorded outcome replays bit-identically
on resume, any damaged line degrades to recomputing that one cell, and
a ledger can never be replayed against a different sweep.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.runtime import (
    RunLedger,
    TaskOutcome,
    corrupt_file,
    decode_outcome,
    encode_outcome,
    map_tasks,
    sweep_fingerprint,
)

FP = "ab" * 32
# Shares the first 16 chars (the ledger filename) with FP but differs
# beyond them — exercises the full-fingerprint header check.
FP_COLLIDING = FP[:16] + "c" * 48

values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(),
    st.tuples(st.integers(), st.floats(allow_nan=False)),
    st.lists(st.integers(), max_size=5),
)

outcomes = st.builds(
    TaskOutcome,
    index=st.integers(0, 10_000),
    value=values,
    worker_pid=st.integers(1, 1 << 22),
    seconds=st.floats(0, 1e6, allow_nan=False),
    attempt=st.integers(0, 5),
    resumed=st.just(False),
)


def outcome_of(index: int, value) -> TaskOutcome:
    return TaskOutcome(index=index, value=value, worker_pid=1234, seconds=0.5)


def triple_and_mark(arg: tuple[int, str]) -> int:
    """Marks each computed item on disk so tests can count recomputes."""
    x, marker_dir = arg
    (Path(marker_dir) / f"computed-{x}").touch()
    return x * 3


class TestEncodeDecode:
    @given(outcome=outcomes)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_is_exact(self, outcome):
        decoded = decode_outcome(encode_outcome(outcome))
        assert decoded is not None
        assert decoded.index == outcome.index
        assert decoded.value == outcome.value  # pickle: bit-exact floats
        assert decoded.worker_pid == outcome.worker_pid
        assert decoded.seconds == outcome.seconds
        assert decoded.attempt == outcome.attempt
        assert decoded.resumed is True  # replayed records are marked

    @given(outcome=outcomes, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_single_char_corruption_is_rejected(self, outcome, data):
        """The self-checksum catches every one-character mutation."""
        line = encode_outcome(outcome)
        position = data.draw(st.integers(0, len(line) - 1))
        replacement = data.draw(st.sampled_from('x0Z}"'))
        assume(line[position] != replacement)
        corrupt = line[:position] + replacement + line[position + 1:]
        assert decode_outcome(corrupt) is None

    def test_garbage_lines_are_rejected(self):
        assert decode_outcome("") is None
        assert decode_outcome("not json at all") is None
        assert decode_outcome("[1, 2, 3]") is None
        assert decode_outcome('{"kind": "header"}') is None
        assert decode_outcome('{"kind": "task", "index": 0}') is None


class TestSweepFingerprint:
    def test_stable_across_calls(self):
        items = [1, "two", (3, 4)]
        assert sweep_fingerprint(triple_and_mark, items) == sweep_fingerprint(
            triple_and_mark, items
        )

    def test_sensitive_to_order_content_and_function(self):
        base = sweep_fingerprint(triple_and_mark, [1, 2, 3])
        assert sweep_fingerprint(triple_and_mark, [2, 1, 3]) != base
        assert sweep_fingerprint(triple_and_mark, [1, 2]) != base
        assert sweep_fingerprint(triple_and_mark, [1, 2, 4]) != base
        assert sweep_fingerprint(outcome_of, [1, 2, 3]) != base


class TestRunLedger:
    def test_record_then_load_round_trips(self, tmp_path):
        ledger = RunLedger(tmp_path, FP)
        with ledger:
            assert ledger.start(num_tasks=3, resume=False) == {}
            ledger.record(outcome_of(0, "a"))
            ledger.record(outcome_of(2, (1.5, None)))
        loaded = ledger.load()
        assert sorted(loaded) == [0, 2]
        assert loaded[0].value == "a"
        assert loaded[2].value == (1.5, None)
        assert all(outcome.resumed for outcome in loaded.values())

    def test_later_record_wins_for_same_index(self, tmp_path):
        ledger = RunLedger(tmp_path, FP)
        with ledger:
            ledger.start(num_tasks=1, resume=False)
            ledger.record(outcome_of(0, "first"))
            ledger.record(outcome_of(0, "second"))
        assert ledger.load()[0].value == "second"

    def test_foreign_fingerprint_reads_empty(self, tmp_path):
        with RunLedger(tmp_path, FP) as ledger:
            ledger.start(num_tasks=1, resume=False)
            ledger.record(outcome_of(0, "a"))
        foreign = RunLedger(tmp_path, FP_COLLIDING)
        assert foreign.path == RunLedger(tmp_path, FP).path  # same file...
        assert foreign.load() == {}  # ...but the header check rejects it

    def test_corrupt_line_skips_only_that_cell(self, tmp_path):
        ledger = RunLedger(tmp_path, FP)
        with ledger:
            ledger.start(num_tasks=3, resume=False)
            for index in range(3):
                ledger.record(outcome_of(index, index * 10))
        lines = ledger.path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # tear record for index 1
        ledger.path.write_text("\n".join(lines) + "\n")
        assert sorted(ledger.load()) == [0, 2]

    def test_resume_compacts_damage_away(self, tmp_path):
        ledger = RunLedger(tmp_path, FP)
        with ledger:
            ledger.start(num_tasks=2, resume=False)
            ledger.record(outcome_of(0, "keep"))
        with ledger.path.open("a") as handle:
            handle.write("%% torn garbage line %%\n")
        with RunLedger(tmp_path, FP) as reopened:
            recorded = reopened.start(num_tasks=2, resume=True)
            assert sorted(recorded) == [0]
        assert "garbage" not in ledger.path.read_text()

    def test_fresh_start_truncates(self, tmp_path):
        ledger = RunLedger(tmp_path, FP)
        with ledger:
            ledger.start(num_tasks=1, resume=False)
            ledger.record(outcome_of(0, "old"))
        with RunLedger(tmp_path, FP) as reopened:
            assert reopened.start(num_tasks=1, resume=False) == {}
        assert ledger.load() == {}


class TestMapTasksResume:
    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        run_dir = tmp_path / "run"
        markers = tmp_path / "markers"
        markers.mkdir()
        items = [(i, str(markers)) for i in range(6)]

        first = map_tasks(triple_and_mark, items, jobs=1, run_dir=run_dir)
        assert first.ok and first.num_resumed == 0
        assert len(list(markers.glob("computed-*"))) == 6

        # Simulate a sweep killed after cell 3: drop the last two records.
        ledger_path = next(run_dir.glob("ledger-*.jsonl"))
        lines = ledger_path.read_text().splitlines()
        ledger_path.write_text("\n".join(lines[:5]) + "\n")  # header + 4 cells
        for marker in markers.glob("computed-*"):
            marker.unlink()

        second = map_tasks(triple_and_mark, items, jobs=1, run_dir=run_dir, resume=True)
        assert second.values == first.values  # bit-identical resume
        assert second.num_resumed == 4
        recomputed = sorted(
            int(p.name.split("-")[1]) for p in markers.glob("computed-*")
        )
        assert recomputed == [4, 5]  # exactly the missing cells
        resumed_indices = {o.index for o in second.outcomes if o.resumed}
        assert resumed_indices == {0, 1, 2, 3}

    def test_corrupted_ledger_degrades_to_recompute(self, tmp_path):
        run_dir = tmp_path / "run"
        markers = tmp_path / "markers"
        markers.mkdir()
        items = [(i, str(markers)) for i in range(6)]

        first = map_tasks(triple_and_mark, items, jobs=1, run_dir=run_dir)
        ledger_path = next(run_dir.glob("ledger-*.jsonl"))
        assert corrupt_file(ledger_path, seed=7, num_bytes=16) > 0

        second = map_tasks(triple_and_mark, items, jobs=1, run_dir=run_dir, resume=True)
        assert second.ok
        assert second.values == first.values  # recomputed cells match exactly

    def test_without_resume_flag_ledger_is_ignored(self, tmp_path):
        items = [(i, str(tmp_path)) for i in range(3)]
        map_tasks(triple_and_mark, items, jobs=1, run_dir=tmp_path / "run")
        report = map_tasks(triple_and_mark, items, jobs=1, run_dir=tmp_path / "run")
        assert report.num_resumed == 0
        assert all(not o.resumed for o in report.outcomes)
