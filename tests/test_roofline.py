"""Tests for the roofline primitives and calibration."""

from __future__ import annotations

import pytest

from repro.hardware.catalog import A100_80G
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.roofline import arithmetic_intensity, op_time, tile_quantized


class TestOpTime:
    def test_memory_bound_operator(self):
        cost = op_time(A100_80G, flops=1e9, num_bytes=1e9, compute_efficiency=1.0, memory_efficiency=1.0)
        assert cost.is_memory_bound
        assert cost.time == pytest.approx(cost.mem_time)

    def test_compute_bound_operator(self):
        cost = op_time(A100_80G, flops=1e15, num_bytes=1e6, compute_efficiency=1.0, memory_efficiency=1.0)
        assert not cost.is_memory_bound
        assert cost.time == pytest.approx(cost.math_time)

    def test_efficiency_scales_times(self):
        full = op_time(A100_80G, 1e12, 1e9, 1.0, 1.0)
        half = op_time(A100_80G, 1e12, 1e9, 0.5, 1.0)
        assert half.math_time == pytest.approx(2 * full.math_time)

    def test_ramped_efficiency_ignored_when_memory_bound(self):
        # Deeply memory-bound op: under-utilized math hides under memory.
        plain = op_time(A100_80G, 1e9, 1e10, 0.6, 0.8)
        ramped = op_time(A100_80G, 1e9, 1e10, 0.6, 0.8, ramped_compute_efficiency=0.06)
        assert ramped.time == pytest.approx(plain.time, rel=0.05)

    def test_ramped_efficiency_binds_when_compute_bound(self):
        plain = op_time(A100_80G, 1e14, 1e6, 0.6, 0.8)
        ramped = op_time(A100_80G, 1e14, 1e6, 0.6, 0.8, ramped_compute_efficiency=0.3)
        assert ramped.time == pytest.approx(2 * plain.time, rel=0.01)

    def test_blend_is_monotone_between_extremes(self):
        ramped = op_time(A100_80G, 1e12, 1e9, 0.6, 0.8, ramped_compute_efficiency=0.3)
        lo = op_time(A100_80G, 1e12, 1e9, 0.6, 0.8)
        hi = op_time(A100_80G, 1e12, 1e9, 0.3, 0.8)
        assert lo.time <= ramped.time <= hi.time


class TestTileQuantization:
    def test_exact_multiple_unchanged(self):
        assert tile_quantized(256, 128) == 256

    def test_partial_tile_rounds_up(self):
        assert tile_quantized(257, 128) == 384

    def test_zero_tokens(self):
        assert tile_quantized(0, 128) == 0

    def test_skinny_gemm_not_padded_to_full_tile(self):
        # A 32-row GEMM uses a smaller tile shape, not a 128 pad.
        assert tile_quantized(32, 128) == 32
        assert tile_quantized(20, 128) == 32

    def test_mid_sizes(self):
        assert tile_quantized(100, 128) == 128
        assert tile_quantized(129, 128) == 256


class TestArithmeticIntensity:
    def test_basic_ratio(self):
        assert arithmetic_intensity(1000.0, 10.0) == pytest.approx(100.0)

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(1.0, 0.0)


class TestCalibration:
    def test_default_is_valid(self):
        assert 0 < DEFAULT_CALIBRATION.matmul_efficiency <= 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("matmul_efficiency", 0.0),
            ("matmul_efficiency", 1.5),
            ("memory_efficiency", -0.1),
            ("kernel_launch_overhead", -1e-6),
            ("iteration_overhead", -1.0),
            ("gemm_efficiency_knee", -5.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            Calibration(**{field: value})

    def test_gemm_efficiency_ramps_up(self):
        calib = DEFAULT_CALIBRATION
        assert calib.gemm_efficiency(64) < calib.gemm_efficiency(512)
        assert calib.gemm_efficiency(512) < calib.gemm_efficiency(16384)

    def test_gemm_efficiency_saturates_at_asymptote(self):
        calib = DEFAULT_CALIBRATION
        assert calib.gemm_efficiency(10**9) == pytest.approx(
            calib.matmul_efficiency, rel=1e-3
        )

    def test_gemm_efficiency_nonpositive_tokens(self):
        assert DEFAULT_CALIBRATION.gemm_efficiency(0) == DEFAULT_CALIBRATION.matmul_efficiency

    def test_zero_knee_means_no_ramp(self):
        calib = Calibration(gemm_efficiency_knee=0.0)
        assert calib.gemm_efficiency(1) == calib.matmul_efficiency
