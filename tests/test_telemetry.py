"""Tests for telemetry export and trace serialization."""

from __future__ import annotations

import json

import pytest

from repro.api import ServingConfig, build_engine, clone_requests
from repro.telemetry.recorder import (
    iteration_rows,
    read_csv,
    read_jsonl,
    request_rows,
    run_counters,
    write_csv,
    write_jsonl,
)
from repro.workload.trace import load_trace, save_trace, trace_statistics
from repro.workload.datasets import SHAREGPT4, generate_requests

from tests.conftest import make_request


@pytest.fixture
def small_result(tiny_deployment):
    trace = [
        make_request(prompt_len=200, output_len=6, arrival_time=0.05 * i)
        for i in range(8)
    ]
    engine = build_engine(tiny_deployment, ServingConfig(token_budget=128))
    return engine.run(trace)


class TestIterationRows:
    def test_row_per_stage_record(self, small_result):
        rows = iteration_rows(small_result)
        assert len(rows) == len(small_result.records)

    def test_rows_sorted_by_start(self, small_result):
        rows = iteration_rows(small_result)
        starts = [r["start"] for r in rows]
        assert starts == sorted(starts)

    def test_breakdown_sums_to_duration(self, small_result):
        for row in iteration_rows(small_result):
            total = (
                row["time_linear"]
                + row["time_attention"]
                + row["time_others"]
                + row["time_communication"]
                + row["time_overhead"]
            )
            assert total == pytest.approx(row["duration"])

    def test_token_accounting_consistent(self, small_result):
        rows = iteration_rows(small_result)
        total_prefill = sum(r["num_prefill_tokens"] for r in rows)
        assert total_prefill == sum(r.prompt_len for r in small_result.requests)


class TestRequestRows:
    def test_row_per_request(self, small_result):
        rows = request_rows(small_result)
        assert len(rows) == len(small_result.requests)
        assert all(r["finished"] for r in rows)

    def test_latencies_present(self, small_result):
        for row in request_rows(small_result):
            assert row["ttft"] is not None and row["ttft"] > 0
            assert row["e2e_latency"] >= row["ttft"]


class TestCounters:
    def test_counters(self, small_result):
        counters = run_counters(small_result)
        assert counters["num_finished"] == 8
        assert counters["num_unfinished"] == 0
        assert counters["num_iterations"] > 0
        assert counters["total_decode_tokens"] == 8 * 5  # output_len - 1 each
        assert counters["mean_batch_size"] >= 1.0

    def test_hybrid_iterations_counted(self, small_result):
        counters = run_counters(small_result)
        assert 0 <= counters["num_hybrid_iterations"] <= counters["num_iterations"]

    def test_cache_counters_present_for_cached_run(self, small_result):
        # The default config memoizes the execution model, so the run's
        # counters carry real hit/miss numbers.
        counters = run_counters(small_result)
        assert counters["cache_misses"] > 0
        assert counters["cache_size"] > 0
        assert 0.0 <= counters["cache_hit_rate"] <= 1.0
        assert (
            counters["cache_hits"] + counters["cache_misses"]
            >= counters["num_iterations"]
        )

    def test_cache_counters_zero_for_uncached_run(self, tiny_deployment):
        trace = [make_request(prompt_len=100, output_len=3) for _ in range(3)]
        engine = build_engine(
            tiny_deployment, ServingConfig(token_budget=128, perf_cache=False)
        )
        counters = run_counters(engine.run(trace))
        assert counters["cache_hits"] == 0
        assert counters["cache_misses"] == 0
        assert counters["cache_hit_rate"] == 0.0


class TestSerialization:
    def test_jsonl_roundtrip(self, small_result, tmp_path):
        rows = iteration_rows(small_result)
        path = write_jsonl(tmp_path / "iters.jsonl", rows)
        assert read_jsonl(path) == json.loads(json.dumps(rows))

    def test_csv_export(self, small_result, tmp_path):
        rows = request_rows(small_result)
        path = write_csv(tmp_path / "requests.csv", rows)
        lines = path.read_text().splitlines()
        assert len(lines) == len(rows) + 1  # header
        assert "request_id" in lines[0]

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", [])

    def test_csv_roundtrip_iteration_rows(self, small_result, tmp_path):
        """CSV parses back to the same rows, types and values exact."""
        rows = iteration_rows(small_result)
        path = write_csv(tmp_path / "iters.csv", rows)
        assert read_csv(path) == rows

    def test_csv_roundtrip_request_rows(self, small_result, tmp_path):
        rows = request_rows(small_result)
        path = write_csv(tmp_path / "requests.csv", rows)
        back = read_csv(path)
        assert back == rows
        # None survives (unfinished requests leave empty cells).
        assert all(isinstance(r["ttft"], float) for r in back)

    def test_csv_roundtrip_none_and_bool_cells(self, tmp_path):
        rows = [
            {"a": None, "b": True, "c": False, "d": 1.5, "e": 7, "f": "text"},
            {"a": 0.1, "b": False, "c": None, "d": -2.0, "e": 0, "f": "True-ish"},
        ]
        path = write_csv(tmp_path / "mixed.csv", rows)
        assert read_csv(path) == rows

    def test_counters_roundtrip_with_cache_fields(self, small_result, tmp_path):
        """run_counters (incl. cache_* fields) survive JSONL and CSV."""
        counters = run_counters(small_result)
        jsonl_path = write_jsonl(tmp_path / "counters.jsonl", [counters])
        assert read_jsonl(jsonl_path) == [counters]
        csv_path = write_csv(tmp_path / "counters.csv", [counters])
        (back,) = read_csv(csv_path)
        assert back == counters
        assert back["cache_hit_rate"] == counters["cache_hit_rate"]


class TestTraceSerialization:
    def test_roundtrip_preserves_fields(self, tmp_path):
        trace = generate_requests(SHAREGPT4, num_requests=20, qps=1.0, seed=3)
        path = save_trace(tmp_path / "trace.jsonl", trace)
        loaded = load_trace(path)
        assert [(r.prompt_len, r.output_len, r.arrival_time) for r in trace] == [
            (r.prompt_len, r.output_len, r.arrival_time) for r in loaded
        ]

    def test_loaded_requests_are_fresh(self, tmp_path):
        trace = [make_request(prompt_len=10, output_len=2)]
        trace[0].record_prefill(10, now=1.0)
        path = save_trace(tmp_path / "t.jsonl", trace)
        loaded = load_trace(path)
        assert loaded[0].prefill_done == 0
        assert loaded[0].request_id != trace[0].request_id

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"prompt_len": 10}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"prompt_len": 5, "output_len": 2, "arrival_time": 0.0}\n\n'
        )
        assert len(load_trace(path)) == 1


class TestTraceStatistics:
    def test_matches_known_values(self):
        trace = [
            make_request(prompt_len=100, output_len=10, arrival_time=0.0),
            make_request(prompt_len=200, output_len=20, arrival_time=1.0),
            make_request(prompt_len=300, output_len=30, arrival_time=2.0),
        ]
        stats = trace_statistics(trace)
        assert stats.num_requests == 3
        assert stats.prompt_median == 200
        assert stats.output_median == 20
        assert stats.mean_arrival_rate == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics([])

    def test_table2_row_formatting(self):
        trace = generate_requests(SHAREGPT4, num_requests=100, seed=0)
        row = trace_statistics(trace).as_table2_row()
        assert "prompt median" in row
