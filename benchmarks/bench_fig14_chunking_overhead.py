"""Figure 14: the prefill-time overhead of chunked-prefills.

Paper: chunk 512 adds at most ~25% to Yi-34B's prefill runtime; chunk
2048's overhead is near-negligible; overhead falls as chunks grow.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig14_chunk_overhead import run_chunk_overhead


def bench_fig14_chunk_overhead(benchmark, report):
    points = benchmark.pedantic(run_chunk_overhead, rounds=1, iterations=1)
    prompts = sorted({p.prompt_len for p in points})
    chunks = sorted({p.chunk_size for p in points})
    by_key = {(p.prompt_len, p.chunk_size): p.overhead for p in points}
    rows = []
    for prompt in prompts:
        row = [str(prompt)]
        for chunk in chunks:
            value = by_key.get((prompt, chunk))
            row.append(f"{value:.3f}" if value else "-")
        rows.append(row)
    report(
        "Fig 14 — chunked-prefill overhead, normalized to no-chunking "
        "(Yi-34B TP2). Paper: ≤~25% at chunk 512, negligible at 2048.",
        format_table(["prompt len"] + [f"chunk {c}" for c in chunks], rows),
    )
    for prompt in prompts:
        # Overhead decreases monotonically with chunk size.
        overheads = [
            by_key[(prompt, c)] for c in chunks if (prompt, c) in by_key
        ]
        assert overheads == sorted(overheads, reverse=True)
    assert all(by_key[(p, 512)] < 1.35 for p in prompts if (p, 512) in by_key)
    assert all(by_key[(p, 2048)] < 1.10 for p in prompts if (p, 2048) in by_key)
