"""Figure 6: linear-layer runtime vs token count at TP 1/2/4/8.

Paper: execution time is largely stagnant while the batch is
memory-bound (especially at higher TP degrees, where the observed
compute-bound knee moves to ~500-600 tokens) and grows linearly after.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig06_linear_runtime import (
    TOKEN_COUNTS,
    TP_DEGREES,
    compute_bound_knee,
    run_linear_runtime,
)


def bench_fig06_linear_runtime(benchmark, report):
    points = benchmark.pedantic(run_linear_runtime, rounds=1, iterations=1)
    by_tp: dict[int, dict[int, float]] = {}
    for p in points:
        by_tp.setdefault(p.tensor_parallel, {})[p.num_tokens] = p.layer_time
    rows = [
        [f"TP{tp}"] + [f"{by_tp[tp][n] * 1e6:.0f}" for n in TOKEN_COUNTS]
        for tp in TP_DEGREES
    ]
    knees = {tp: compute_bound_knee(tp) for tp in TP_DEGREES}
    report(
        "Fig 6 — per-layer linear runtime (µs) vs tokens (LLaMA2-70B, A100). "
        f"Paper: flat while memory-bound, then linear; knee moves right with TP "
        f"(measured knees: {knees}).",
        format_table(["config"] + [str(n) for n in TOKEN_COUNTS], rows),
    )
    # Runtime at fixed tokens shrinks with TP.
    for n in TOKEN_COUNTS:
        assert by_tp[8][n] < by_tp[1][n]
    # The compute-bound knee is no earlier at TP8 than TP1.
    assert knees[8] >= knees[1]
    # Past the knee, runtime grows ~linearly: 4096 tokens ≈ 2× 2048.
    assert by_tp[1][4096] > 1.7 * by_tp[1][2048]
