"""Table 4: hybrid-batching and chunked-prefills in isolation vs together.

Paper (Yi-34B TP2, budget 1024, 128 requests):

| scheduler              | sharegpt4 TTFT/TBT | arxiv TTFT/TBT |
| hybrid-batching-only   | 0.53 / 0.68        | 3.78 / 1.38    |
| chunked-prefills-only  | 1.04 / 0.17        | 5.38 / 0.20    |
| Sarathi (combined)     | 0.76 / 0.14        | 3.90 / 0.17    |

Shape: hybrid-only has the best TTFT but stalls (high TBT);
chunked-only bounds TBT but inflates TTFT; combined wins TBT while
keeping TTFT between the two.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.table4_ablation import run_ablation

PAPER_NUMBERS = {
    ("hybrid_batching_only", "openchat_sharegpt4"): (0.53, 0.68),
    ("chunked_prefills_only", "openchat_sharegpt4"): (1.04, 0.17),
    ("sarathi", "openchat_sharegpt4"): (0.76, 0.14),
    ("hybrid_batching_only", "arxiv_summarization"): (3.78, 1.38),
    ("chunked_prefills_only", "arxiv_summarization"): (5.38, 0.20),
    ("sarathi", "arxiv_summarization"): (3.90, 0.17),
}


def bench_table4_ablation(benchmark, report, bench_scale):
    rows_data = benchmark.pedantic(
        run_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = []
    for r in rows_data:
        paper_ttft, paper_tbt = PAPER_NUMBERS[(r.scheduler, r.dataset)]
        rows.append(
            [
                r.scheduler,
                r.dataset,
                f"{r.p50_ttft:.2f}",
                f"{paper_ttft:.2f}",
                f"{r.p99_tbt:.2f}",
                f"{paper_tbt:.2f}",
            ]
        )
    report(
        "Table 4 — ablation (Yi-34B TP2, budget 1024). "
        "Shape to match: combined has lowest TBT; hybrid-only lowest TTFT "
        "but highest TBT; chunked-only highest TTFT.",
        format_table(
            [
                "scheduler",
                "dataset",
                "P50 TTFT",
                "(paper)",
                "P99 TBT",
                "(paper)",
            ],
            rows,
        ),
    )
    for dataset in {r.dataset for r in rows_data}:
        cells = {r.scheduler: r for r in rows_data if r.dataset == dataset}
        combined = cells["sarathi"]
        hybrid = cells["hybrid_batching_only"]
        chunked = cells["chunked_prefills_only"]
        assert combined.p99_tbt < hybrid.p99_tbt
        assert combined.p99_tbt <= chunked.p99_tbt * 1.1
        assert hybrid.p50_ttft <= combined.p50_ttft
        assert combined.p50_ttft <= chunked.p50_ttft
