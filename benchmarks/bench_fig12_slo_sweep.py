"""Figure 12: capacity as a function of the P99-TBT SLO target.

Paper: vLLM's capacity is nearly identical at max batch sizes
32/64/128 (generation stalls, not memory, bind it) and collapses under
stringent SLOs; Sarathi-Serve trades precisely via the token budget —
512 wins strict targets (3.5× over vLLM at 100 ms), 2048 wins relaxed
ones (1.65× at 1 s).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig12_slo_sweep import run_slo_sweep


def bench_fig12_slo_sweep(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_slo_sweep, args=(bench_scale,), rounds=1, iterations=1
    )
    slos = sorted({p.slo_p99_tbt for p in points})
    variants = sorted({p.variant for p in points})
    by_key = {(p.variant, p.slo_p99_tbt): p.capacity_qps for p in points}
    rows = [
        [variant] + [f"{by_key[(variant, slo)]:.2f}" for slo in slos]
        for variant in variants
    ]
    report(
        "Fig 12 — capacity (QPS) vs P99 TBT SLO (Mistral-7B, sharegpt4). "
        "Paper: vLLM flat across batch sizes & collapsing at strict SLOs; "
        "Sarathi-512 wins strict, Sarathi-2048 wins relaxed.",
        format_table(["variant"] + [f"SLO {s:.2f}s" for s in slos], rows),
    )
    tightest, loosest = slos[0], slos[-1]
    # vLLM barely changes with batch size (its stalls bind first).
    vllm_caps = [by_key[(f"vllm-bs{bs}", tightest)] for bs in (32, 64, 128)]
    assert max(vllm_caps) - min(vllm_caps) <= 0.5 * max(max(vllm_caps), 0.1)
    # The small budget wins the tightest SLO...
    assert by_key[("sarathi-512", tightest)] >= by_key[("vllm-bs128", tightest)]
    # ...and the large budget is at least competitive when relaxed.
    assert by_key[("sarathi-2048", loosest)] >= by_key[("sarathi-512", loosest)] * 0.8
    # Capacity is non-decreasing in the SLO for every variant.
    for variant in variants:
        caps = [by_key[(variant, slo)] for slo in slos]
        for a, b in zip(caps, caps[1:]):
            assert b >= a * 0.8  # tolerance for search noise
