"""Extensions: arrival burstiness and eviction-policy robustness.

Production traffic is burstier than the paper's Poisson arrivals, and
vLLM ships two eviction policies (recompute / swap).  These benches
check that the paper's conclusions survive both variations.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.robustness import (
    run_burstiness_sweep,
    run_preemption_policy_comparison,
)


def bench_extension_burstiness(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_burstiness_sweep, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [p.scheduler, f"{p.cv:.1f}", f"{p.p99_tbt:.3f}", f"{p.max_tbt:.2f}", f"{p.median_ttft:.2f}"]
        for p in points
    ]
    report(
        "Extension — arrival burstiness (Mistral-7B, sharegpt4 @ 1.5 qps, "
        "Gamma arrivals). Sarathi's stall-free bound is load-shape-"
        "independent; vLLM's worst stall grows with burst size.",
        format_table(
            ["scheduler", "inter-arrival CV", "P99 TBT (s)", "max TBT (s)", "med TTFT (s)"],
            rows,
        ),
    )
    by_key = {(p.scheduler, p.cv): p for p in points}
    cvs = sorted({p.cv for p in points})
    smooth, burstiest = cvs[0], cvs[-1]
    # Sarathi's worst inter-token gap barely moves across burstiness...
    assert (
        by_key[("sarathi", burstiest)].max_tbt
        < 2 * by_key[("sarathi", smooth)].max_tbt
    )
    # ...while vLLM's tail degrades with bursts and sits far above
    # Sarathi's under the burstiest load.
    vllm_worst = max(
        by_key[("vllm", burstiest)].p99_tbt, by_key[("vllm", burstiest)].max_tbt / 10
    )
    assert vllm_worst > 1.5 * by_key[("vllm", smooth)].p99_tbt
    assert (
        by_key[("vllm", burstiest)].max_tbt
        > 3 * by_key[("sarathi", burstiest)].max_tbt
    )


def bench_extension_preemption_policy(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_preemption_policy_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [
            p.policy,
            f"{p.p99_tbt:.3f}",
            f"{p.median_ttft:.2f}",
            f"{p.makespan:.1f}",
            str(p.num_preemptions),
            str(p.num_swap_outs),
            str(p.redone_prefill_tokens),
        ]
        for p in points
    ]
    report(
        "Extension — eviction policy under KV pressure (Yi-34B, squeezed "
        "cache). Recompute re-prefills evicted work; swap pays PCIe "
        "transfers and keeps it.",
        format_table(
            ["policy", "P99 TBT (s)", "med TTFT (s)", "makespan (s)",
             "preemptions", "swap-outs", "re-prefilled tokens"],
            rows,
        ),
    )
    by_policy = {p.policy: p for p in points}
    assert by_policy["recompute"].num_preemptions > 0
    assert by_policy["swap"].num_swap_outs > 0
    assert (
        by_policy["swap"].redone_prefill_tokens
        < by_policy["recompute"].redone_prefill_tokens
    )
