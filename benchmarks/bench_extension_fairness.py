"""Extension: multi-tenant fairness on top of stall-free batching.

§6 cites Sheng et al.'s fairness work as complementary to
Sarathi-Serve; this bench runs the combination.  A heavy tenant floods
long prompts; a light tenant sends occasional short requests.
Virtual-token-counter admission protects the light tenant's TTFT
without hurting the heavy tenant or the stall-free TBT bound.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.multitenant import run_fairness_comparison


def bench_extension_fairness(benchmark, report, bench_scale):
    rows_data = benchmark.pedantic(
        run_fairness_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [r.policy, r.client, f"{r.median_ttft:.2f}", f"{r.p99_ttft:.2f}", f"{r.max_tbt:.3f}"]
        for r in rows_data
    ]
    report(
        "Extension — multi-tenant fairness (Mistral-7B; heavy tenant "
        "floods long prompts, light tenant sends short ones). VTC "
        "admission shields the light tenant's TTFT; stall-free TBT "
        "holds for everyone.",
        format_table(
            ["policy", "tenant", "med TTFT (s)", "P99 TTFT (s)", "max TBT (s)"], rows
        ),
    )
    by_key = {(r.policy, r.client): r for r in rows_data}
    # Fair admission slashes the light tenant's tail TTFT...
    assert (
        by_key[("fair", "light")].p99_ttft
        < 0.5 * by_key[("fcfs", "light")].p99_ttft
    )
    # ...without meaningfully hurting the heavy tenant...
    assert (
        by_key[("fair", "heavy")].median_ttft
        < 1.3 * by_key[("fcfs", "heavy")].median_ttft
    )
    # ...and the stall-free bound survives under both policies.
    for row in rows_data:
        assert row.max_tbt < 0.2
