"""Figure 9: the latency cost of coalescing prefills with decodes.

Paper: Orca-style hybrid batches with full prefills inflate decode
latency by up to 28.3×; Sarathi's chunked coalescing keeps the hybrid
iteration within a small factor of a decode-only batch.  Measured on
Mistral-7B (budget 256) and LLaMA2-70B TP4 (budget 512).
"""

from __future__ import annotations

from repro.experiments.common import format_table, mistral_deployment
from repro.experiments.fig09_hybrid_latency import (
    llama70_tp4_deployment,
    run_hybrid_latency,
)


def _run_both():
    return {
        "Mistral-7B (budget 256)": run_hybrid_latency(
            mistral_deployment(), token_budget=256
        ),
        "LLaMA2-70B TP4 (budget 512)": run_hybrid_latency(
            llama70_tp4_deployment(), token_budget=512
        ),
    }


def bench_fig09_hybrid_latency(benchmark, report):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    rows = []
    for label, points in results.items():
        for p in points:
            rows.append(
                [
                    label,
                    str(p.prompt_len),
                    f"{p.decode_only * 1e3:.1f}",
                    f"{p.full_prefill_slowdown:.1f}x",
                    f"{p.chunked_prefill_slowdown:.2f}x",
                ]
            )
    report(
        "Fig 9 — hybrid batch latency vs decode-only. "
        "Paper: full-prefill hybrids up to 28.3× slower; chunked stays tight.",
        format_table(
            ["deployment", "prompt", "decode-only (ms)", "+full prefill", "+chunked"],
            rows,
        ),
    )
    for points in results.values():
        for p in points:
            # Equal when the whole prompt fits in one chunk.
            assert p.chunked_prefill_slowdown <= p.full_prefill_slowdown + 1e-9
        longest = points[-1]
        assert longest.full_prefill_slowdown > 10
        assert longest.chunked_prefill_slowdown < 6
        # Slowdown of the full-prefill hybrid grows with prompt length.
        slowdowns = [p.full_prefill_slowdown for p in points]
        assert slowdowns == sorted(slowdowns)
