#!/usr/bin/env python
"""Perf-regression harness for the memoized execution model.

Times two fixed-seed workloads on the uncached and cached execution
models (``repro.perf.cache``), verifies the outputs stayed
bit-identical, and writes the speedups plus hit rates to
``BENCH_simulator.json`` at the repo root so future PRs have a perf
trajectory to compare against.

Cases:

* **capacity_sweep_dynamic** — a capacity search with the
  SLO-driven dynamic scheduler, whose per-iteration budget bisection
  prices many candidate batches through the execution model; the
  memoized model is the difference between minutes and seconds here.
* **hybrid_batch_fig09** — a Fig. 9-style sweep pricing hybrid
  prefill+decode batches across token budgets and prompt lengths
  directly on the execution model.
* **parallel_capacity_grid** — a Fig. 10-shaped capacity grid run the
  pre-engine way (serial, memoization off) vs through the sweep engine
  (``--jobs 4`` on a warm persistent cache), with the serial-cached,
  parallel-cold and parallel-warm wall-clocks recorded in the detail.
  Every variant must produce the identical table.
* **capacity_grid_disk_cache** — the same grid's first (cold) disk-
  cached run vs its fully-warm rerun in a fresh process registry; the
  warm run must win by ≥1.5x and change nothing.
* **vectorized_replica_1e6** — the object engine vs the vectorized
  event core on a 10⁶-request single-replica decode-heavy trace
  (uncached→object, cached→vectorized columns).  The full run drives
  the vectorized core end-to-end; the speedup is measured at equal N
  on the same trace with both engines capped at the same simulated
  horizon, where the outputs must be bit-identical.
* **vectorized_fleet_1e6** — the same comparison through the online
  fleet simulator: 10⁶ requests routed across 100 replicas.
* **vectorized_pp_1e6** — the single-replica comparison on a 4-stage
  pipeline-parallel deployment (TP1-PP4 over 100G Ethernet), where the
  vectorized core replays the object engine's per-stage event
  interleaving bit-for-bit.
* **vectorized_dynamic_1e6** — the single-replica comparison under the
  SLO-driven dynamic scheduler, whose per-iteration budget bisection
  is the priciest scheduling path either engine has.
* **surrogate_capacity_grid** — a Yi-34B capacity grid searched three
  ways: warm-start-only baseline (surrogate off), then a cold
  surrogate run that fills the store, then a warm rerun seeded by it
  (uncached→baseline, cached→warm columns).  ``identical`` asserts
  both that every capacity is bit-identical across all three runs and
  that the warm store saves ≥30% of the simulation probes.
* **prefix_cache_conversation** — KV prefix caching on a multi-round
  conversation workload.  The timed columns are a 100%-miss workload
  (unique prefix ids) with the cache off vs on — those two runs must
  stay bit-identical, pinning the cache's no-sharing contract — and
  the detail records the headline number: conversation capacity at a
  fixed P99-TBT SLO with the cache off vs on, per chunk size.
* **leaderboard_smoke** — the two-policy scheduler leaderboard
  (sarathi vs the SRPT oracle, capacity search skipped) run twice in
  one process: a cold-registry run vs a process-warm rerun, which must
  produce identical rankings cell for cell.
* **fleet_resilience** — the resilience experiment's high-fault-rate
  operating point (correlated slowdown faults over 2 domains) with the
  brownout controller off vs on, run twice in one process; both runs
  must produce identical points, and the detail records the headline:
  brownout-on goodput vs brownout-off, plus the MTTR-style recovery
  times.

Usage::

    python benchmarks/bench_simulator_speed.py            # full harness
    python benchmarks/bench_simulator_speed.py --quick    # CI smoke
    python benchmarks/bench_simulator_speed.py --no-write # don't touch
                                                          # BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
import time
from dataclasses import astuple, replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import (  # noqa: E402
    Deployment,
    ServingConfig,
    build_engine,
    execution_model_for,
)
from repro.cluster.fleet import FleetConfig, simulate_fleet  # noqa: E402
from repro.experiments.capacity_runner import (  # noqa: E402
    CapacityCellSpec,
    measure_capacity,
    run_capacity_cells,
    serving_config_for,
)
from repro.parallel.config import ParallelConfig  # noqa: E402
from repro.experiments.common import Scale, mistral_deployment  # noqa: E402
from repro.experiments.fig09_hybrid_latency import run_hybrid_latency  # noqa: E402
from repro.experiments.prefix_cache import (  # noqa: E402
    CHUNK_SIZES,
    capacity_gain,
    conversation_spec_for,
    run_prefix_cache_capacity,
)
from repro.hardware.catalog import A100_80G, ETHERNET_100G  # noqa: E402
from repro.metrics.slo import derived_slo  # noqa: E402
from repro.models.catalog import TINY_1B, YI_34B  # noqa: E402
from repro.perf.cache import CachedExecutionModel  # noqa: E402
from repro.reporting import (  # noqa: E402
    BenchCase,
    render_bench_table,
    write_bench_json,
)
from repro.runtime import clear_process_models  # noqa: E402
from repro.types import Request, SchedulerKind  # noqa: E402
from repro.workload.conversation import simulate_conversations  # noqa: E402
from repro.workload.datasets import ARXIV_SUMMARIZATION, SHAREGPT4  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simulator.json"

# Sized so the uncached dynamic-scheduler sweep stays around a minute;
# --quick shrinks both the model and the load for CI.
SWEEP_SCALE = Scale(num_requests=24, capacity_rel_tol=0.3, capacity_max_probes=5)
QUICK_SCALE = Scale(num_requests=10, capacity_rel_tol=0.4, capacity_max_probes=3)
# The capacity grid prices long arxiv prompts, where the execution
# model dominates wall-clock; smaller request counts keep the four
# runs of the grid (uncached / cold / warm / parallel) around a minute.
GRID_SCALE = Scale(num_requests=16, capacity_rel_tol=0.3, capacity_max_probes=4)
GRID_QUICK_SCALE = Scale(num_requests=8, capacity_rel_tol=0.5, capacity_max_probes=3)


def _probe_fingerprint(result) -> list[tuple]:
    """Everything a capacity search decided, as comparable values."""
    return [
        (
            qps,
            ok,
            metrics.median_ttft,
            metrics.p99_tbt,
            metrics.max_tbt,
            metrics.throughput_tokens_per_s,
            metrics.num_preemptions,
        )
        for qps, metrics, ok in result.probes
    ] + [("capacity", result.capacity_qps)]


def _timed_capacity_sweep(
    deployment: Deployment,
    scale: Scale,
    seed: int,
    min_load_duration: float = 60.0,
) -> BenchCase:
    """Fixed-seed capacity sweep, dynamic scheduler, both paths."""
    slo = derived_slo(deployment.execution_model(), strict=True)
    scale = replace(scale, seed=seed)

    def sweep(perf_cache: bool):
        config = serving_config_for(
            deployment, SchedulerKind.SARATHI_DYNAMIC, strict=True,
            perf_cache=perf_cache,
        )
        exec_model = execution_model_for(deployment, config)
        start = time.perf_counter()
        result = measure_capacity(
            deployment,
            SchedulerKind.SARATHI_DYNAMIC,
            SHAREGPT4,
            slo,
            scale,
            config=config,
            qps_hint=0.5,
            min_load_duration=min_load_duration,
            exec_model=exec_model,
        )
        return time.perf_counter() - start, result, exec_model

    uncached_s, uncached, _ = sweep(perf_cache=False)
    cached_s, cached, cached_model = sweep(perf_cache=True)
    assert isinstance(cached_model, CachedExecutionModel)
    stats = cached_model.cache_stats

    identical = _probe_fingerprint(uncached) == _probe_fingerprint(cached)
    return BenchCase(
        name="capacity_sweep_dynamic",
        uncached_seconds=uncached_s,
        cached_seconds=cached_s,
        identical=identical,
        cache_hits=stats.hits,
        cache_misses=stats.misses,
        work_hits=stats.work_hits,
        work_misses=stats.work_misses,
        detail=(
            f"{deployment.label}, sarathi_dynamic, {SHAREGPT4.name}, "
            f"seed={scale.seed}, probes={cached.num_probes}, "
            f"capacity={cached.capacity_qps:.2f} qps"
        ),
    )


def _timed_hybrid_batch(deployment: Deployment, quick: bool, seed: int) -> BenchCase:
    """Fig. 9-style hybrid-batch pricing sweep, both paths."""
    budgets = (128, 256) if quick else (128, 256, 512, 1024, 2048)
    batch_sizes = (8, 32) if quick else (8, 16, 32, 64)
    repeats = 2 if quick else 5

    def sweep(exec_model):
        points = []
        for _ in range(repeats):
            for budget in budgets:
                for batch_size in batch_sizes:
                    points.extend(
                        run_hybrid_latency(
                            deployment,
                            token_budget=budget,
                            decode_batch_size=batch_size,
                            exec_model=exec_model,
                        )
                    )
        return points

    uncached_model = deployment.execution_model()
    start = time.perf_counter()
    uncached_points = sweep(uncached_model)
    uncached_s = time.perf_counter() - start

    cached_model = CachedExecutionModel(deployment.execution_model())
    start = time.perf_counter()
    cached_points = sweep(cached_model)
    cached_s = time.perf_counter() - start

    identical = uncached_points == cached_points
    stats = cached_model.cache_stats
    return BenchCase(
        name="hybrid_batch_fig09",
        uncached_seconds=uncached_s,
        cached_seconds=cached_s,
        identical=identical,
        cache_hits=stats.hits,
        cache_misses=stats.misses,
        work_hits=stats.work_hits,
        work_misses=stats.work_misses,
        detail=(
            f"{deployment.label}, budgets={budgets}, "
            f"decode_batches={batch_sizes}, repeats={repeats}"
        ),
    )


def _timed_parallel_grid(
    deployment: Deployment,
    scale: Scale,
    seed: int,
    cache_dir: Path,
    quick: bool,
) -> list[BenchCase]:
    """A capacity grid four ways: legacy serial vs engine variants.

    Returns the ``parallel_capacity_grid`` case (pre-engine serial +
    memoization-off vs engine ``--jobs 4`` warm) and the
    ``capacity_grid_disk_cache`` case (engine cold vs fully-warm rerun).
    All variants must produce the identical cell table.
    """
    scale = replace(scale, seed=seed)
    dataset = ARXIV_SUMMARIZATION
    strict_values = (True,) if quick else (True, False)
    schedulers = (SchedulerKind.VLLM, SchedulerKind.SARATHI)
    specs = [
        CapacityCellSpec(
            deployment=deployment,
            scheduler=scheduler,
            dataset=dataset,
            scale=scale,
            strict=strict,
            qps_hint=0.3,
        )
        for strict in strict_values
        for scheduler in schedulers
    ]
    # One dynamic-scheduler cell: its per-iteration budget bisection
    # prices thousands of trial batches, so it is where the engine's
    # memoized + disk-warmed pricing pays off hardest.
    specs.append(
        CapacityCellSpec(
            deployment=deployment,
            scheduler=SchedulerKind.SARATHI_DYNAMIC,
            dataset=dataset,
            scale=scale,
            strict=True,
            qps_hint=0.3,
        )
    )

    # Pre-engine baseline: serial loop, fresh uncached model per cell.
    start = time.perf_counter()
    for spec in specs:
        config = serving_config_for(
            deployment, spec.scheduler, spec.strict, perf_cache=False
        )
        slo = derived_slo(deployment.execution_model(), spec.strict)
        measure_capacity(
            deployment, spec.scheduler, dataset, slo, scale,
            config=config, qps_hint=spec.qps_hint,
        )
    legacy_s = time.perf_counter() - start

    def engine_run(jobs: int, with_cache: bool):
        clear_process_models()
        start = time.perf_counter()
        outcomes = run_capacity_cells(
            specs, jobs=jobs, cache_dir=cache_dir if with_cache else None
        )
        return time.perf_counter() - start, outcomes

    cold_s, cold = engine_run(jobs=1, with_cache=True)
    warm_s, warm = engine_run(jobs=1, with_cache=True)
    par_s, par = engine_run(jobs=4, with_cache=True)

    # Bit-identity holds across engine variants (same spec list, any
    # jobs/cache state).  The legacy baseline runs a *different* search
    # (static hints instead of warm-started ones), so its capacities
    # agree only to the search tolerance — it times, not golden-checks.
    tables = [[o.cell for o in run] for run in (cold, warm, par)]
    identical = all(table == tables[0] for table in tables)
    hits = sum(o.cache_row.get("cache_hits", 0) for o in warm)
    misses = sum(o.cache_row.get("cache_misses", 0) for o in warm)
    work_hits = sum(o.cache_row.get("cache_work_hits", 0) for o in warm)
    work_misses = sum(o.cache_row.get("cache_work_misses", 0) for o in warm)
    grid_label = (
        f"{len(specs)} cells ({deployment.label}, {dataset.name}), seed={scale.seed}"
    )
    return [
        BenchCase(
            name="parallel_capacity_grid",
            uncached_seconds=legacy_s,
            cached_seconds=par_s,
            identical=identical,
            cache_hits=hits,
            cache_misses=misses,
            work_hits=work_hits,
            work_misses=work_misses,
            detail=(
                f"{grid_label}; serial+no-memo {legacy_s:.1f}s, engine "
                f"jobs=1 cold {cold_s:.1f}s, jobs=1 warm {warm_s:.1f}s, "
                f"jobs=4 warm {par_s:.1f}s (single-CPU host: parallel "
                f"gains come from the warm persistent cache)"
            ),
        ),
        BenchCase(
            name="capacity_grid_disk_cache",
            uncached_seconds=cold_s,
            cached_seconds=warm_s,
            identical=tables[0] == tables[1],
            cache_hits=hits,
            cache_misses=misses,
            work_hits=work_hits,
            work_misses=work_misses,
            detail=(
                f"{grid_label}; first disk-cached run vs fully-warm "
                f"rerun in a fresh process (target >=1.5x)"
            ),
        ),
    ]


# ----------------------------------------------------------------------
# Vectorized event core vs the object golden reference
# ----------------------------------------------------------------------
# Decode-heavy shape (short prompts, long generations) at saturating
# load: this is where the object engine's per-token bookkeeping
# dominates and the vectorized core's bulk decode path pays off.
VEC_NUM_REQUESTS = 1_000_000
VEC_QUICK_REQUESTS = 5_000
VEC_FLEET_REPLICAS = 100
# The fleet case spreads its token volume over fewer, longer requests
# (output 320–960) arriving as a flood: routing cost is per-arrival
# and engine-independent, and flooding keeps per-replica batches full,
# so the measurement stays about the engines rather than the router.
VEC_FLEET_REQUESTS = 20_000
VEC_FLEET_QUICK_REQUESTS = 1_000
# Completions cluster in the back half of a flooded run (every request
# decodes concurrently), so the fleet cap must reach past the first
# finishers for the capped runs to have metrics at all.
VEC_FLEET_CAP_FRACTION = 0.5
# Fraction of the simulated horizon both engines replay for the
# equal-N speedup measurement in the full harness (the object engine
# at the full 10⁶-request horizon would run for the better part of an
# hour; the capped prefix is identical work for both engines).
VEC_CAP_FRACTION = 0.08
# The dynamic scheduler's budget bisection makes the object engine's
# per-iteration work several times pricier than plain sarathi, so its
# equal-N comparison replays a shorter prefix of the horizon.
VEC_DYNAMIC_CAP_FRACTION = 0.02

_VEC_CONFIG = dict(
    scheduler=SchedulerKind.SARATHI, token_budget=512, max_batch_size=256
)


def _vec_trace(
    num_requests: int, seed: int, qps: float, output_range: tuple[int, int] = (32, 96)
) -> list[Request]:
    """Synthetic decode-heavy trace; regenerated (not cloned) per run."""
    rng = random.Random(seed)
    now = 0.0
    trace = []
    for _ in range(num_requests):
        now += rng.expovariate(qps)
        trace.append(
            Request(
                prompt_len=rng.randint(32, 96),
                output_len=rng.randint(*output_range),
                arrival_time=now,
            )
        )
    return trace


def _vec_timelines(result) -> list[tuple]:
    # request_id is a process-global counter, so the regenerated trace
    # of the second run carries different ids; sorting by id preserves
    # generation order, which is what aligns the two runs.
    return [
        (
            r.first_scheduled_at,
            r.first_token_at,
            r.finished_at,
            tuple(r.token_times),
            r.num_restarts,
        )
        for r in sorted(result.requests, key=lambda r: r.request_id)
    ]


def _vec_identical(golden, candidate) -> bool:
    return (
        golden.makespan == candidate.makespan
        and len(golden.records) == len(candidate.records)
        and _vec_timelines(golden) == _vec_timelines(candidate)
    )


def _timed_vectorized_single(
    name: str,
    deployment: Deployment,
    config_kwargs: dict,
    quick: bool,
    seed: int,
    setup_label: str,
    cap_fraction: float = VEC_CAP_FRACTION,
) -> BenchCase:
    """10⁶-request single-replica trace, object vs vectorized core."""
    num_requests = VEC_QUICK_REQUESTS if quick else VEC_NUM_REQUESTS
    qps = 2_000.0

    def run(engine: str, max_time: float | None = None):
        config = ServingConfig(engine=engine, **config_kwargs)
        built = build_engine(deployment, config)
        trace = _vec_trace(num_requests, seed, qps)
        start = time.perf_counter()
        result = built.run(trace, max_time=max_time)
        return time.perf_counter() - start, result

    vec_full_s, vec_full = run("vectorized")
    if quick:
        obj_s, obj = run("object")
        vec_s, vec = vec_full_s, vec_full
        horizon = "full trace"
    else:
        cap = cap_fraction * vec_full.makespan
        obj_s, obj = run("object", max_time=cap)
        vec_s, vec = run("vectorized", max_time=cap)
        finished = len(obj.finished_requests)
        horizon = (
            f"equal-N capped at {cap:.0f}s simulated "
            f"(~{finished} of {num_requests} finished)"
        )
    return BenchCase(
        name=name,
        uncached_seconds=obj_s,
        cached_seconds=vec_s,
        identical=_vec_identical(obj, vec),
        detail=(
            f"{deployment.label}, {setup_label}, "
            f"{num_requests} decode-heavy requests @ {qps:.0f} qps, seed={seed}; "
            f"{horizon}; vectorized full trace: {vec_full_s:.1f}s wall, "
            f"makespan {vec_full.makespan:.0f}s"
        ),
    )


def _timed_vectorized_replica(deployment: Deployment, quick: bool, seed: int) -> BenchCase:
    return _timed_vectorized_single(
        "vectorized_replica_1e6",
        deployment,
        _VEC_CONFIG,
        quick,
        seed,
        "sarathi budget=512 batch=256",
    )


def _timed_vectorized_pp(quick: bool, seed: int) -> BenchCase:
    """The single-replica comparison on a 4-stage pipeline.

    Every request now produces per-stage events (4 stage completions
    plus 3 inter-stage sends per batch hop), so this is the stress
    test for the vectorized pipe heap's replay of the object engine's
    event interleaving.
    """
    deployment = Deployment(
        model=TINY_1B,
        gpu=A100_80G,
        parallel=ParallelConfig(pipeline_parallel=4, pp_link=ETHERNET_100G),
    )
    return _timed_vectorized_single(
        "vectorized_pp_1e6",
        deployment,
        _VEC_CONFIG,
        quick,
        seed,
        "sarathi budget=512 batch=256, pp=4 over 100G Ethernet",
    )


def _timed_vectorized_dynamic(deployment: Deployment, quick: bool, seed: int) -> BenchCase:
    """The single-replica comparison under the dynamic scheduler.

    The per-iteration budget bisection prices several candidate
    batches per scheduling step on both engines; the object engine
    pays it through Python object traversal, the vectorized engine
    through memoized component pricing — so the cap fraction is
    smaller to keep the object leg of the full harness around the
    same wall-clock as the plain-sarathi case.
    """
    config = dict(
        scheduler=SchedulerKind.SARATHI_DYNAMIC,
        max_batch_size=_VEC_CONFIG["max_batch_size"],
    )
    return _timed_vectorized_single(
        "vectorized_dynamic_1e6",
        deployment,
        config,
        quick,
        seed,
        "sarathi_dynamic (derived strict TBT SLO) batch=256",
        cap_fraction=VEC_DYNAMIC_CAP_FRACTION,
    )


def _timed_vectorized_fleet(deployment: Deployment, quick: bool, seed: int) -> BenchCase:
    """The same comparison through the 100-replica online fleet.

    Long generations (output 320–960) keep the per-arrival routing
    overhead, which both engines pay identically, a small fraction of
    the per-token engine work being compared.
    """
    num_requests = VEC_FLEET_QUICK_REQUESTS if quick else VEC_FLEET_REQUESTS
    qps = 2_000.0 if quick else 50_000.0
    output_range = (320, 960)
    cap_fraction = VEC_FLEET_CAP_FRACTION
    fleet_config = FleetConfig(num_replicas=VEC_FLEET_REPLICAS)

    def run(engine: str, max_time: float | None = None):
        config = ServingConfig(engine=engine, **_VEC_CONFIG)
        trace = _vec_trace(num_requests, seed, qps, output_range)
        start = time.perf_counter()
        result, metrics = simulate_fleet(
            deployment, config, trace, fleet_config, max_time=max_time
        )
        return time.perf_counter() - start, result, metrics

    vec_full_s, vec_full, vec_full_metrics = run("vectorized")
    if quick:
        obj_s, obj, obj_metrics = run("object")
        vec_s, vec, vec_metrics = vec_full_s, vec_full, vec_full_metrics
        horizon = "full trace"
    else:
        cap = cap_fraction * vec_full.makespan
        obj_s, obj, obj_metrics = run("object", max_time=cap)
        vec_s, vec, vec_metrics = run("vectorized", max_time=cap)
        finished = sum(1 for r in obj.merged().requests if r.is_finished)
        horizon = (
            f"equal-N capped at {cap:.1f}s simulated "
            f"(~{finished} of {num_requests} finished)"
        )
    identical = (
        _vec_timelines(obj.merged()) == _vec_timelines(vec.merged())
        and obj_metrics == vec_metrics
    )
    return BenchCase(
        name="vectorized_fleet_1e6",
        uncached_seconds=obj_s,
        cached_seconds=vec_s,
        identical=identical,
        detail=(
            f"{deployment.label} × {VEC_FLEET_REPLICAS} replicas, "
            f"{num_requests} decode-heavy requests @ {qps:.0f} qps, seed={seed}; "
            f"{horizon}; vectorized full trace: {vec_full_s:.1f}s wall, "
            f"makespan {vec_full.makespan:.1f}s"
        ),
    )


# ----------------------------------------------------------------------
# Surrogate-guided capacity search
# ----------------------------------------------------------------------
# Yi-34B/TP2 keeps capacities in the ~1 QPS range, so every probe
# simulates a handful of requests and the measurement is about probe
# counts, not execution-model pricing.  max_probes stays generous:
# truncated searches are path-dependent and would break the
# bit-identity the case asserts.
SURROGATE_SCALE = Scale(num_requests=16, capacity_rel_tol=0.3, capacity_max_probes=20)
SURROGATE_QUICK_SCALE = Scale(
    num_requests=8, capacity_rel_tol=0.4, capacity_max_probes=20
)
SURROGATE_MIN_PROBE_SAVINGS = 0.30


def _timed_surrogate_grid(quick: bool, seed: int) -> BenchCase:
    """A capacity grid with the surrogate off, cold, and store-warm.

    The warm rerun must return bit-identical capacities while spending
    at least 30% fewer simulation probes than the warm-start-only
    baseline; both requirements fold into ``identical`` so a
    regression in either fails the harness.
    """
    deployment = Deployment(
        model=YI_34B, gpu=A100_80G, parallel=ParallelConfig(tensor_parallel=2)
    )
    scale = replace(
        SURROGATE_QUICK_SCALE if quick else SURROGATE_SCALE, seed=seed
    )
    # Strict-SLO cells only: relaxed cells land ~6x higher on the QPS
    # ladder, and with the 60s load floor each of their probes offers
    # qps x 60s of Yi-34B traffic — one relaxed cell would outweigh
    # the rest of the harness.  Schedulers vary instead; they share a
    # context row, which is also what the store's ratio transfer eats.
    schedulers = (
        (SchedulerKind.SARATHI, SchedulerKind.VLLM)
        if quick
        else (
            SchedulerKind.SARATHI,
            SchedulerKind.VLLM,
            SchedulerKind.ORCA,
            SchedulerKind.FASTER_TRANSFORMER,
        )
    )
    specs = [
        CapacityCellSpec(
            deployment=deployment,
            scheduler=scheduler,
            dataset=SHAREGPT4,
            scale=scale,
            strict=True,
        )
        for scheduler in schedulers
    ]

    def caps(outcomes):
        return [o.cell.capacity_qps for o in outcomes]

    def probes(outcomes):
        return sum(o.cell.num_probes for o in outcomes)

    start = time.perf_counter()
    baseline = run_capacity_cells(list(specs), surrogate=False)
    base_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = run_capacity_cells(list(specs), cache_dir=cache_dir, surrogate=True)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_capacity_cells(list(specs), cache_dir=cache_dir, surrogate=True)
        warm_s = time.perf_counter() - start
    saved = 1 - probes(warm) / probes(baseline)
    identical = (
        caps(cold) == caps(baseline)
        and caps(warm) == caps(baseline)
        and saved >= SURROGATE_MIN_PROBE_SAVINGS
    )
    return BenchCase(
        name="surrogate_capacity_grid",
        uncached_seconds=base_s,
        cached_seconds=warm_s,
        identical=identical,
        detail=(
            f"{len(specs)} cells ({deployment.label}, {SHAREGPT4.name}), "
            f"seed={scale.seed}; capacities bit-identical off/cold/warm; "
            f"probes {probes(baseline)} -> {probes(warm)} "
            f"({saved:.0%} saved, >={SURROGATE_MIN_PROBE_SAVINGS:.0%} required); "
            f"cold surrogate run {cold_s:.1f}s"
        ),
    )


# ----------------------------------------------------------------------
# KV prefix caching on conversation workloads
# ----------------------------------------------------------------------
# Small token budgets ration prefill hardest, so they see the largest
# relative capacity gain from reuse; the full harness records both a
# strict (512) and a relaxed (2048) chunk size.
PREFIX_SCALE = Scale(num_requests=36, capacity_rel_tol=0.3, capacity_max_probes=5)
PREFIX_QUICK_SCALE = Scale(num_requests=12, capacity_rel_tol=0.5, capacity_max_probes=3)


def _conversation_fingerprint(result) -> list[tuple]:
    # Closed-loop workloads regenerate their requests per run, so the
    # global request-id counter differs between runs; requests compare
    # in creation order on every other externally visible field.
    return [
        (
            r.arrival_time,
            r.prompt_len,
            r.output_len,
            r.prefix_id,
            r.first_scheduled_at,
            r.first_token_at,
            r.finished_at,
            tuple(r.token_times),
            r.num_restarts,
        )
        for r in result.requests
    ]


def _timed_prefix_cache_conversation(
    deployment: Deployment, quick: bool, seed: int
) -> BenchCase:
    """Prefix-cache conversation case: miss-path identity + SLO capacity.

    Unlike the memoization cases, cache-on here does *different work*
    (follow-up rounds skip re-prefilling shared history), so the two
    timed columns are the configuration where the contract demands
    bit-identity: a 100%-miss workload (unique prefix ids per round)
    with the cache off vs on.  The headline capacity gain at the fixed
    P99-TBT SLO goes in the detail and the hit counters come from a
    cache-on run of the real (sharing) conversation workload.
    """
    scale = replace(PREFIX_QUICK_SCALE if quick else PREFIX_SCALE, seed=seed)
    chunk_sizes = (512,) if quick else CHUNK_SIZES

    def run(prefix_mode: str, cache_on: bool):
        spec = replace(
            conversation_spec_for(scale, prefix_mode=prefix_mode),
            arrival_qps=0.5,
        )
        config = ServingConfig(
            scheduler=SchedulerKind.SARATHI,
            token_budget=chunk_sizes[0],
            prefix_cache=cache_on,
        )
        start = time.perf_counter()
        result, _ = simulate_conversations(deployment, config, spec, seed=scale.seed)
        return time.perf_counter() - start, result

    miss_off_s, miss_off = run("unique", cache_on=False)
    miss_on_s, miss_on = run("unique", cache_on=True)
    identical = (
        _conversation_fingerprint(miss_off) == _conversation_fingerprint(miss_on)
        and miss_on.prefix_stats is not None
        and miss_on.prefix_stats.hits == 0
    )

    # Hit counters from the sharing workload (same load, prefix ids on).
    _, sharing = run("conversation", cache_on=True)
    stats = sharing.prefix_stats

    points = run_prefix_cache_capacity(
        scale, deployment, chunk_sizes=chunk_sizes, qps_hint=0.3
    )
    gains = capacity_gain(points)
    caps = {(p.chunk_size, p.variant): p.capacity_qps for p in points}
    gain_text = ", ".join(
        f"chunk {chunk}: {caps[(chunk, 'cache-off')]:.2f}->"
        f"{caps[(chunk, 'cache-on')]:.2f} qps ({gains[chunk]:.2f}x)"
        for chunk in chunk_sizes
    )
    return BenchCase(
        name="prefix_cache_conversation",
        uncached_seconds=miss_off_s,
        cached_seconds=miss_on_s,
        identical=identical,
        cache_hits=stats.hits if stats is not None else 0,
        cache_misses=stats.misses if stats is not None else 0,
        detail=(
            f"{deployment.label}, sarathi, conversation workload seed={scale.seed}; "
            f"capacity at 25x-TBT SLO: {gain_text}; timed columns = 100%-miss "
            f"workload cache off vs on (must be bit-identical)"
        ),
    )


# ----------------------------------------------------------------------
# Scheduler leaderboard determinism
# ----------------------------------------------------------------------
# The leaderboard's whole claim is that rankings are seeded and
# reproducible; two policies keep the case under the CI budget while
# still exercising all three workload generators per run.
LEADERBOARD_POLICIES = ("sarathi", "srpt_oracle")
LEADERBOARD_SCALE = Scale(num_requests=40, capacity_rel_tol=0.35, capacity_max_probes=7)
LEADERBOARD_QUICK_SCALE = Scale(
    num_requests=12, capacity_rel_tol=0.5, capacity_max_probes=3
)


def _leaderboard_fingerprint(rows) -> list[tuple]:
    return [(row.rank, row.capacity_qps, astuple(row.cell)) for row in rows]


def _timed_leaderboard(deployment: Deployment, quick: bool, seed: int) -> BenchCase:
    """Leaderboard case: cold-registry run vs process-warm rerun.

    Runs the two-policy mini-leaderboard (sarathi vs the SRPT oracle,
    capacity search skipped) twice in the same process.  The first run
    starts from a cleared execution-model registry; the second reuses
    the warm per-process models.  Both runs must produce identical
    rows cell for cell, and the detail records the oracle-vs-sarathi
    mean-latency gap on the saturating static workload.
    """
    from repro.experiments.leaderboard import run_leaderboard

    scale = replace(
        LEADERBOARD_QUICK_SCALE if quick else LEADERBOARD_SCALE, seed=seed
    )

    def run():
        start = time.perf_counter()
        rows = run_leaderboard(
            scale,
            deployment=deployment,
            schedulers=LEADERBOARD_POLICIES,
            include_capacity=False,
        )
        return time.perf_counter() - start, rows

    clear_process_models()
    cold_s, cold = run()
    warm_s, warm = run()
    identical = _leaderboard_fingerprint(cold) == _leaderboard_fingerprint(warm)

    static = {
        row.cell.scheduler: row.cell for row in cold if row.cell.workload == "static"
    }
    oracle = static["srpt_oracle"]
    sarathi = static["sarathi"]
    return BenchCase(
        name="leaderboard_smoke",
        uncached_seconds=cold_s,
        cached_seconds=warm_s,
        identical=identical,
        detail=(
            f"{deployment.label}, {len(LEADERBOARD_POLICIES)} policies x 3 "
            f"workloads, seed={scale.seed}; static qps {oracle.qps:g}: "
            f"srpt_oracle mean latency {oracle.mean_latency:.2f}s vs sarathi "
            f"{sarathi.mean_latency:.2f}s; timed columns = cold-registry run "
            f"vs process-warm rerun (must rank identically)"
        ),
    )


# ----------------------------------------------------------------------
# Fleet resilience determinism + brownout payoff
# ----------------------------------------------------------------------
RESILIENCE_SCALE = Scale(num_requests=80, capacity_rel_tol=0.2, capacity_max_probes=3)
RESILIENCE_QUICK_SCALE = Scale(
    num_requests=40, capacity_rel_tol=0.2, capacity_max_probes=3
)


def _timed_fleet_resilience(quick: bool, seed: int) -> BenchCase:
    """Resilience case: brownout off/on pair, cold vs process-warm.

    Always runs on the Mistral deployment (the resilience sweep's own):
    the operating point — correlated 2x slowdowns against the strict
    TBT SLO with a chunk-dominated 1024 budget — is tuned so the
    brownout's budget rung has real leverage, and a tiny model would
    change the regime.  Both runs must produce identical points.
    """
    from repro.experiments.resilience import (
        ResiliencePointSpec,
        SWEEP_TOKEN_BUDGET,
        run_resilience_point,
    )

    deployment = mistral_deployment()
    scale = replace(
        RESILIENCE_QUICK_SCALE if quick else RESILIENCE_SCALE, seed=seed
    )
    config = ServingConfig(
        scheduler=SchedulerKind.SARATHI, token_budget=SWEEP_TOKEN_BUDGET
    )
    slo = derived_slo(execution_model_for(deployment, config), strict=True)
    specs = [
        ResiliencePointSpec(
            deployment=deployment,
            config=config,
            scale=scale,
            num_replicas=4,
            qps=6.0,
            fault_rate=0.15,
            correlated=True,
            brownout=brownout,
            mean_downtime=6.0,
            tbt_deadline=slo.p99_tbt,
        )
        for brownout in (False, True)
    ]

    def run():
        start = time.perf_counter()
        points = [run_resilience_point(spec) for spec in specs]
        return time.perf_counter() - start, points

    clear_process_models()
    cold_s, cold = run()
    warm_s, warm = run()
    identical = cold == warm
    off, on = cold

    def _fmt(value):
        return "-" if value is None else f"{value:.2f}s"

    return BenchCase(
        name="fleet_resilience",
        uncached_seconds=cold_s,
        cached_seconds=warm_s,
        identical=identical,
        detail=(
            f"{deployment.label}, 4 replicas x 2 domains, correlated "
            f"slowdown rate=0.15, seed={scale.seed}; goodput "
            f"{off.goodput_rps:.2f} rps (brownout off) -> "
            f"{on.goodput_rps:.2f} rps (on), MTTR {_fmt(off.mean_recovery_s)} "
            f"-> {_fmt(on.mean_recovery_s)}; timed columns = cold-registry "
            f"run vs process-warm rerun (must be bit-identical)"
        ),
    )


def bench_simulator_cache_speed(benchmark, report):
    """pytest entry: quick variant of the harness, same assertions."""
    deployment = Deployment(model=TINY_1B, gpu=A100_80G)

    def run():
        sweep = _timed_capacity_sweep(
            deployment, QUICK_SCALE, seed=0, min_load_duration=10.0
        )
        hybrid = _timed_hybrid_batch(deployment, quick=True, seed=0)
        with tempfile.TemporaryDirectory() as cache_dir:
            grid = _timed_parallel_grid(
                deployment, GRID_QUICK_SCALE, seed=0,
                cache_dir=Path(cache_dir), quick=True,
            )
        prefix = _timed_prefix_cache_conversation(deployment, quick=True, seed=0)
        leaderboard = _timed_leaderboard(deployment, quick=True, seed=0)
        resilience = _timed_fleet_resilience(quick=True, seed=0)
        return [sweep, hybrid, *grid, prefix, leaderboard, resilience]

    cases = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Simulator speed — memoized vs raw execution model "
        "(cached path must be bit-identical and faster).",
        render_bench_table(cases),
    )
    for case in cases:
        assert case.identical, f"{case.name}: cached path diverged"
    sweep = cases[0]
    assert sweep.speedup >= 2.0, f"speedup {sweep.speedup:.2f}x below 2x"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny model, tiny load"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the report (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the table without rewriting the JSON report",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the capacity sweep reaches this speedup",
    )
    args = parser.parse_args(argv)

    if args.quick:
        deployment = Deployment(model=TINY_1B, gpu=A100_80G)
        scale = QUICK_SCALE
    else:
        deployment = mistral_deployment()
        scale = SWEEP_SCALE

    print(f"deployment: {deployment.label} ({'quick' if args.quick else 'full'})")
    print("timing capacity sweep (dynamic scheduler)…", flush=True)
    sweep_case = _timed_capacity_sweep(
        deployment, scale, args.seed, min_load_duration=10.0 if args.quick else 60.0
    )
    print("timing hybrid-batch pricing sweep…", flush=True)
    hybrid_case = _timed_hybrid_batch(deployment, args.quick, args.seed)
    print("timing parallel capacity grid (sweep engine)…", flush=True)
    with tempfile.TemporaryDirectory() as cache_dir:
        grid_cases = _timed_parallel_grid(
            deployment,
            GRID_QUICK_SCALE if args.quick else GRID_SCALE,
            args.seed,
            cache_dir=Path(cache_dir),
            quick=args.quick,
        )
    # The vectorized-engine cases always run on the tiny deployment:
    # the point is event-core overhead at large N, not model pricing.
    vec_deployment = Deployment(model=TINY_1B, gpu=A100_80G)
    print("timing vectorized engine (single replica)…", flush=True)
    vec_replica_case = _timed_vectorized_replica(vec_deployment, args.quick, args.seed)
    print("timing vectorized engine (100-replica fleet)…", flush=True)
    vec_fleet_case = _timed_vectorized_fleet(vec_deployment, args.quick, args.seed)
    print("timing vectorized engine (4-stage pipeline)…", flush=True)
    vec_pp_case = _timed_vectorized_pp(args.quick, args.seed)
    print("timing vectorized engine (dynamic scheduler)…", flush=True)
    vec_dynamic_case = _timed_vectorized_dynamic(vec_deployment, args.quick, args.seed)
    print("timing surrogate-guided capacity grid…", flush=True)
    surrogate_case = _timed_surrogate_grid(args.quick, args.seed)
    print("timing prefix-cache conversation capacity…", flush=True)
    prefix_case = _timed_prefix_cache_conversation(deployment, args.quick, args.seed)
    print("timing scheduler leaderboard (2-policy smoke)…", flush=True)
    leaderboard_case = _timed_leaderboard(deployment, args.quick, args.seed)
    print("timing fleet resilience (brownout off/on)…", flush=True)
    resilience_case = _timed_fleet_resilience(args.quick, args.seed)
    cases = [
        sweep_case, hybrid_case, *grid_cases,
        vec_replica_case, vec_fleet_case, vec_pp_case, vec_dynamic_case,
        surrogate_case, prefix_case, leaderboard_case, resilience_case,
    ]

    print()
    print(render_bench_table(cases))

    failures = [case.name for case in cases if not case.identical]
    if failures:
        print(f"\nFAIL: outputs diverged between paths: {', '.join(failures)}")
        return 1
    if args.min_speedup is not None and sweep_case.speedup < args.min_speedup:
        print(
            f"\nFAIL: capacity-sweep speedup {sweep_case.speedup:.2f}x "
            f"below required {args.min_speedup:.2f}x"
        )
        return 1

    if not args.no_write:
        meta = {
            "deployment": deployment.label,
            "quick": args.quick,
            "seed": args.seed,
            "python": sys.version.split()[0],
        }
        path = write_bench_json(args.output, cases, meta)
        print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
