"""Figure 11: serving capacity of the pipeline-parallel deployments.

Paper: on LLaMA2-70B (8×A40, TP4-PP2) and Falcon-180B (8×A100,
TP4-PP2 over Ethernet) Sarathi-Serve gains up to 6.3×/4.3× over
Orca/vLLM — stall-freedom *and* bubble-freedom compound under PP.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig10_capacity_small import sarathi_gain_over
from repro.experiments.fig11_capacity_pp import run_capacity_grid_pp


def bench_fig11_capacity_pp(benchmark, report, bench_scale):
    cells = benchmark.pedantic(
        run_capacity_grid_pp, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [
            c.deployment.split("/")[0],
            c.dataset.replace("_summarization", "").replace("openchat_", ""),
            c.slo_name,
            c.scheduler,
            f"{c.capacity_qps:.2f}",
        ]
        for c in cells
    ]
    gains_vllm = sarathi_gain_over(cells, "vllm")
    gains_orca = sarathi_gain_over(cells, "orca")
    gain_lines = [
        f"  {key[0].split('/')[0]:11s} {key[1]:20s} {key[2]:8s} "
        f"sarathi/vllm={gains_vllm.get(key, float('nan')):.2f}x  "
        f"sarathi/orca={gains_orca.get(key, float('nan')):.2f}x"
        for key in sorted(gains_vllm)
    ]
    report(
        "Fig 11 — capacity (QPS) for LLaMA2-70B & Falcon-180B (TP4-PP2). "
        "Paper: Sarathi up to 6.3×/4.3× over Orca/vLLM.",
        format_table(["model", "dataset", "SLO", "scheduler", "capacity qps"], rows)
        + "\n\nSarathi gains:\n"
        + "\n".join(gain_lines),
    )
    for key, gain in gains_vllm.items():
        assert gain >= 0.85, f"sarathi lost to vllm at {key}: {gain:.2f}"
    strict_gains = [g for (dep, ds, slo), g in gains_vllm.items() if slo == "strict"]
    assert max(strict_gains) > 1.5
