"""Ablations of the reproduction's design choices (DESIGN.md §4).

Not figures from the paper, but the knobs its design discussion calls
out: the token-budget value, tile-quantization, the KV allocator
family, and the future-work dynamic budget.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_allocator_comparison,
    run_budget_sweep,
    run_dynamic_budget_comparison,
    run_tile_quantization,
)
from repro.experiments.common import format_table


def bench_ablation_token_budget(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_budget_sweep, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [str(p.token_budget), f"{p.p99_tbt:.3f}", f"{p.median_ttft:.3f}", f"{p.makespan:.1f}"]
        for p in points
    ]
    report(
        "Ablation — token budget sweep (Mistral-7B, sharegpt4 @ 2 qps). "
        "§4.3: smaller budgets tighten TBT, larger budgets speed prefills.",
        format_table(["budget", "P99 TBT (s)", "med TTFT (s)", "makespan (s)"], rows),
    )
    tbts = [p.p99_tbt for p in points]
    ttfts = [p.median_ttft for p in points]
    # TBT grows with the budget; TTFT improves (or holds) with it.
    assert tbts[-1] > tbts[0]
    assert ttfts[-1] <= ttfts[0] * 1.1


def bench_ablation_tile_quantization(benchmark, report):
    points = benchmark.pedantic(run_tile_quantization, rounds=1, iterations=1)
    rows = [
        [str(p.chunk), f"{p.with_tiles * 1e3:.1f}", f"{p.without_tiles * 1e3:.1f}",
         f"{p.with_tiles / p.without_tiles - 1:+.1%}"]
        for p in points
    ]
    report(
        "Ablation — tile quantization (Yi-34B TP2 prefill chunks). "
        "§4.3: a chunk one token past a tile boundary pays a step cost "
        "(the paper saw +32% at 257 vs 256).",
        format_table(["chunk", "tiled (ms)", "untiled (ms)", "penalty"], rows),
    )
    by_chunk = {p.chunk: p for p in points}
    aligned, off = by_chunk[256], by_chunk[257]
    assert off.with_tiles > 1.10 * aligned.with_tiles
    assert off.without_tiles < 1.05 * aligned.without_tiles


def bench_ablation_memory_allocator(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_allocator_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [p.allocator, f"{p.median_ttft:.2f}", f"{p.p99_scheduling_delay:.2f}", f"{p.makespan:.1f}"]
        for p in points
    ]
    report(
        "Ablation — KV allocator under the same Sarathi policy "
        "(Yi-34B TP2, sharegpt burst @ 2.5 qps). §5.1: worst-case "
        "reservation caps concurrent admissions, inflating queueing.",
        format_table(
            ["allocator", "med TTFT (s)", "P99 sched delay (s)", "makespan (s)"], rows
        ),
    )
    by_name = {p.allocator: p for p in points}
    assert (
        by_name["paged"].p99_scheduling_delay
        <= by_name["reservation"].p99_scheduling_delay
    )


def bench_ablation_dynamic_budget(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_dynamic_budget_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [p.variant, f"{p.p99_tbt:.3f}", f"{p.median_ttft:.3f}", f"{p.mean_budget:.0f}"]
        for p in points
    ]
    report(
        "Ablation — static vs dynamic token budget (Mistral-7B, "
        "sharegpt4 @ 2 qps). Future work in §5.1: dynamic budgets spend "
        "unused SLO headroom on prefill progress.",
        format_table(["variant", "P99 TBT (s)", "med TTFT (s)", "mean budget"], rows),
    )
    by_name = {p.variant: p for p in points}
    assert by_name["dynamic"].median_ttft <= by_name["static-512"].median_ttft * 1.05
    assert by_name["dynamic"].mean_budget > 512
