"""Benchmark-suite plumbing.

Benches time one full experiment run via pytest-benchmark and register
their paper-vs-measured tables with the ``report`` fixture; the tables
are printed in the terminal summary (after the timing table), so they
survive pytest's output capture.

Scale is controlled with ``REPRO_SCALE`` (smoke | default | full).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale, scale_from_env

_REPORTS: list[tuple[str, str]] = []

# Capacity searches dominate bench wall-clock; trimmed relative to the
# library default so the whole suite stays in the tens of minutes.
BENCH_SCALE = scale_from_env(
    Scale(num_requests=96, capacity_rel_tol=0.2, capacity_max_probes=9)
)


@pytest.fixture
def report():
    """Register a (title, table) pair for the terminal summary."""

    def _add(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return _add


@pytest.fixture
def bench_scale() -> Scale:
    return BENCH_SCALE


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        terminalreporter.write_line(text)
