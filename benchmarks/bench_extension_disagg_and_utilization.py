"""Extensions: disaggregated serving and roofline utilization.

Neither is a paper figure; both quantify claims the paper makes in
prose — §6 predicts the disaggregation tradeoff and leaves the
comparison to future work, and Fig. 5's caption claims Sarathi's
hybrid batches "maximize both compute and bandwidth utilization".
"""

from __future__ import annotations

from repro.api import ServingConfig, build_engine, clone_requests
from repro.experiments.common import format_table, mistral_deployment
from repro.experiments.disagg_comparison import run_disagg_comparison
from repro.metrics.utilization import batch_utilization
from repro.types import SchedulerKind, TokenWork


def bench_extension_disagg(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_disagg_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [
            p.system,
            f"{p.median_ttft:.3f}",
            f"{p.p99_tbt:.3f}",
            f"{p.makespan:.1f}",
            str(p.num_migrations),
            f"{p.total_migration_time:.2f}",
        ]
        for p in points
    ]
    report(
        "Extension — Sarathi (2 replicas) vs disaggregated 1P+1D at equal "
        "GPUs (Mistral-7B, sharegpt4). §6 prediction: disaggregation gives "
        "interference-free decode TBT but pays KV migration and splits "
        "the fleet.",
        format_table(
            ["system", "med TTFT (s)", "P99 TBT (s)", "makespan (s)",
             "migrations", "migration time (s)"],
            rows,
        ),
    )
    by_system = {p.system: p for p in points}
    sarathi = by_system["sarathi-2-replicas"]
    disagg = by_system["disagg-1P1D-NVLink"]
    # Disaggregation's decode pool is interference-free...
    assert disagg.p99_tbt < sarathi.p99_tbt
    # ...but both systems complete the trace in comparable time, and the
    # Ethernet variant pays real migration seconds.
    assert disagg.makespan < 1.5 * sarathi.makespan
    ethernet = by_system["disagg-1P1D-Ethernet-100G"]
    assert ethernet.total_migration_time > 5 * disagg.total_migration_time


def _utilization_rows():
    exec_model = mistral_deployment().execution_model()
    compositions = {
        "decode-only (bs 32)": [TokenWork.decode(1024) for _ in range(32)],
        "prefill-only (2048)": [TokenWork.prefill_chunk(2048)],
        "hybrid (32d + 480p)": (
            [TokenWork.decode(1024) for _ in range(32)]
            + [TokenWork.prefill_chunk(480, past_len=512, is_last=False)]
        ),
    }
    return {
        name: batch_utilization(exec_model, works)
        for name, works in compositions.items()
    }


def bench_extension_utilization(benchmark, report):
    utils = benchmark.pedantic(_utilization_rows, rounds=1, iterations=1)
    rows = [
        [name, f"{u.mfu:.1%}", f"{u.mbu:.1%}", f"{u.balance:.1%}"]
        for name, u in utils.items()
    ]
    report(
        "Extension — MFU/MBU by batch composition (Mistral-7B, A100). "
        "Fig. 5 caption: hybrid batches maximize both compute and "
        "bandwidth utilization.",
        format_table(["batch", "MFU", "MBU", "min(MFU,MBU)"], rows),
    )
    decode = utils["decode-only (bs 32)"]
    prefill = utils["prefill-only (2048)"]
    hybrid = utils["hybrid (32d + 480p)"]
    # Decode wastes compute; prefill wastes bandwidth; hybrid balances.
    assert decode.mfu < 0.25
    assert prefill.mbu < decode.mbu
    assert hybrid.balance > decode.balance
    assert hybrid.balance > prefill.balance
