"""Figure 3: prefill vs decode throughput across batch sizes.

Paper: prefill throughput saturates at batch size 1; decode throughput
grows almost linearly with batch size (Mistral-7B, A100, length 1024).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig03_phase_throughput import run_phase_throughput


def bench_fig03_phase_throughput(benchmark, report):
    points = benchmark.pedantic(run_phase_throughput, rounds=1, iterations=1)
    rows = [
        [str(p.batch_size), f"{p.prefill_tokens_per_s:.0f}", f"{p.decode_tokens_per_s:.0f}"]
        for p in points
    ]
    report(
        "Fig 3 — phase throughput vs batch size (Mistral-7B, 1×A100, len 1024). "
        "Paper: prefill saturates at bs=1; decode scales ~linearly.",
        format_table(["batch", "prefill tok/s", "decode tok/s"], rows),
    )
    first, last = points[0], points[-1]
    prefill_gain = last.prefill_tokens_per_s / first.prefill_tokens_per_s
    decode_gain = last.decode_tokens_per_s / first.decode_tokens_per_s
    assert prefill_gain < 1.5
    assert decode_gain > 0.3 * last.batch_size
    # Prefill is one-to-two orders of magnitude more efficient per token.
    assert first.prefill_tokens_per_s > 20 * first.decode_tokens_per_s
