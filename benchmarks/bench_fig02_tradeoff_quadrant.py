"""Figure 2: the throughput–latency quadrant.

Paper (illustrative): prefill-prioritizing schedulers (Orca, vLLM) buy
throughput with TBT latency; decode-prioritizing (FasterTransformer)
buys TBT with throughput; Sarathi-Serve gets both.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig02_quadrant import run_quadrant


def bench_fig02_quadrant(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_quadrant, args=(bench_scale,), kwargs={"qps": 3.0}, rounds=1, iterations=1
    )
    rows = [
        [
            p.scheduler,
            f"{p.throughput_tokens_per_s:.0f}",
            f"{p.p99_tbt:.3f}",
            f"{p.median_ttft:.2f}",
        ]
        for p in points
    ]
    report(
        "Fig 2 — throughput/latency quadrant (Mistral-7B, sharegpt4). "
        "Paper: FT = low TBT/low throughput; Orca/vLLM = high/high; "
        "Sarathi = high throughput + low TBT.",
        format_table(
            ["scheduler", "throughput (tok/s)", "P99 TBT (s)", "median TTFT (s)"], rows
        ),
    )
    by_sched = {p.scheduler: p for p in points}
    sarathi = by_sched["sarathi"]
    ft = by_sched["faster_transformer"]
    assert sarathi.p99_tbt < by_sched["vllm"].p99_tbt
    assert sarathi.p99_tbt < by_sched["orca"].p99_tbt
    assert sarathi.throughput_tokens_per_s > 1.25 * ft.throughput_tokens_per_s
