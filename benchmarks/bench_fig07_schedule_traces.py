"""Figure 7: the A/B/C/D scheduling example under all four policies.

Paper: vLLM and Orca stall A/B's decodes behind C/D's prefills;
FasterTransformer delays C/D until A/B drain; Sarathi-Serve chunks
C/D's prefills and coalesces them with A/B's decodes, stalling nobody.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig07_schedules import run_schedule_traces


def bench_fig07_schedule_traces(benchmark, report):
    traces = benchmark.pedantic(run_schedule_traces, rounds=1, iterations=1)
    rows = []
    for t in traces:
        preview = "  ".join(t.iterations[:8])
        rows.append(
            [t.scheduler, f"{t.worst_decode_gap:.3f}", f"{t.first_token_c:.3f}", preview]
        )
    report(
        "Fig 7 — A/B/C/D schedules (A,B decoding; long-prompt C,D arrive). "
        "Paper: only Sarathi avoids both decode stalls and prefill delays.",
        format_table(
            ["scheduler", "worst A/B gap (s)", "TTFT of C (s)", "first iterations"],
            rows,
        ),
    )
    by_sched = {t.scheduler: t for t in traces}
    sarathi = by_sched["sarathi"]
    # Sarathi: near-FT decode gaps with near-vLLM TTFT for C.
    assert sarathi.worst_decode_gap < 0.3 * by_sched["vllm"].worst_decode_gap
    assert sarathi.worst_decode_gap < 0.3 * by_sched["orca"].worst_decode_gap
    assert sarathi.first_token_c < 0.5 * by_sched["faster_transformer"].first_token_c
    assert any("+" in it for it in sarathi.iterations)  # hybrid batches exist
