"""Figure 8: pipeline bubbles under Orca vs Sarathi-Serve.

Paper: non-uniform micro-batch runtimes (full prefills next to decode
batches) leave later pipeline stages idle; Sarathi's uniform-compute
hybrid batches shrink both the runtime variation and the bubbles
(Falcon-180B, TP4-PP2).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig08_bubbles import run_bubble_comparison


def bench_fig08_pipeline_bubbles(benchmark, report, bench_scale):
    reports = benchmark.pedantic(
        run_bubble_comparison, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [
            r.scheduler,
            f"{r.iteration_time_cv:.2f}",
            f"{r.bubble_fraction_last_stage:.1%}",
            f"{r.bubble_time:.1f}",
            f"{r.makespan:.0f}",
        ]
        for r in reports
    ]
    report(
        "Fig 8 — pipeline bubbles (Falcon-180B, TP4-PP2, sharegpt4). "
        "Paper: Orca's varying micro-batches cause bubbles; Sarathi's "
        "uniform batches minimize them.",
        format_table(
            [
                "scheduler",
                "iter-time CV",
                "last-stage bubble frac",
                "bubble time (s)",
                "makespan (s)",
            ],
            rows,
        ),
    )
    by_sched = {r.scheduler: r for r in reports}
    assert (
        by_sched["sarathi"].iteration_time_cv < by_sched["orca"].iteration_time_cv
    )
    assert (
        by_sched["sarathi"].bubble_fraction_last_stage
        <= by_sched["orca"].bubble_fraction_last_stage
    )
