"""Figure 1: generation stalls (a) and P99 TBT vs load (b).

Paper: vLLM shows generation stalls lasting several seconds on the
arxiv trace (Yi-34B, TP2) while Sarathi-Serve eliminates them, and
vLLM's P99 TBT inflates with load while Sarathi-Serve's stays flat.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig01_stalls import run_stall_timeline, run_tbt_vs_load


def bench_fig01a_stall_timeline(benchmark, report, bench_scale):
    reports = benchmark.pedantic(
        run_stall_timeline, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [
            r.scheduler,
            str(r.num_stalls),
            f"{r.max_stall:.2f}",
            f"{r.p99_tbt:.3f}",
            f"{r.median_tbt:.3f}",
        ]
        for r in reports
    ]
    report(
        "Fig 1a — generation stalls (Yi-34B TP2, arxiv trace). "
        "Paper: vLLM stalls for multiple seconds; Sarathi has none.",
        format_table(
            ["scheduler", "stalls(>0.5s)", "max stall (s)", "P99 TBT (s)", "median TBT (s)"],
            rows,
        ),
    )
    by_sched = {r.scheduler: r for r in reports}
    assert by_sched["sarathi"].num_stalls == 0
    assert by_sched["vllm"].max_stall > 1.0


def bench_fig01b_tbt_vs_load(benchmark, report, bench_scale):
    points = benchmark.pedantic(
        run_tbt_vs_load, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [p.scheduler, f"{p.qps:.2f}", f"{p.p99_tbt:.3f}", f"{p.max_tbt:.2f}", f"{p.median_ttft:.2f}"]
        for p in points
    ]
    report(
        "Fig 1b — P99 TBT vs load (Yi-34B TP2, arxiv). "
        "Paper: vLLM's tail inflates with load; Sarathi stays flat.",
        format_table(["scheduler", "qps", "P99 TBT (s)", "max TBT (s)", "med TTFT (s)"], rows),
    )
    highest = max(p.qps for p in points)
    by_key = {(p.scheduler, p.qps): p for p in points}
    # vLLM's worst stall explodes under load; at some load its P99 also
    # crosses Sarathi's (at small scales stalls can be too rare to land
    # exactly at the 99th percentile of the heaviest point).
    assert by_key[("vllm", highest)].max_tbt > 10 * by_key[("sarathi", highest)].max_tbt
    assert any(
        by_key[("vllm", p.qps)].p99_tbt > by_key[("sarathi", p.qps)].p99_tbt
        for p in points
    )
