"""Figure 10: serving capacity of Mistral-7B and Yi-34B.

Paper: Sarathi-Serve sustains up to 2.6× (Mistral-7B) and 3.7×/4.0×
(Yi-34B, vs vLLM/Orca) higher load across both datasets, with the
largest gaps under the strict SLO; vLLM beats Orca under relaxed SLOs
thanks to PagedAttention's bigger batches.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig10_capacity_small import run_capacity_grid, sarathi_gain_over


def bench_fig10_capacity(benchmark, report, bench_scale):
    cells = benchmark.pedantic(
        run_capacity_grid, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [
        [
            c.deployment.split("/")[0],
            c.dataset.replace("_summarization", "").replace("openchat_", ""),
            c.slo_name,
            c.scheduler,
            f"{c.capacity_qps:.2f}",
        ]
        for c in cells
    ]
    gains_vllm = sarathi_gain_over(cells, "vllm")
    gains_orca = sarathi_gain_over(cells, "orca")
    gain_lines = [
        f"  {key[0].split('/')[0]:11s} {key[1]:20s} {key[2]:8s} "
        f"sarathi/vllm={gains_vllm.get(key, float('nan')):.2f}x  "
        f"sarathi/orca={gains_orca.get(key, float('nan')):.2f}x"
        for key in sorted(gains_vllm)
    ]
    report(
        "Fig 10 — capacity (QPS) for Mistral-7B & Yi-34B. "
        "Paper: Sarathi up to 2.6×/3.7× over vLLM, 4.0× over Orca.",
        format_table(["model", "dataset", "SLO", "scheduler", "capacity qps"], rows)
        + "\n\nSarathi gains:\n"
        + "\n".join(gain_lines),
    )
    # Sarathi wins every cell (small tolerance for search granularity),
    # and by a clear margin under strict SLOs.
    for key, gain in gains_vllm.items():
        assert gain >= 0.85, f"sarathi lost to vllm at {key}: {gain:.2f}"
    strict_gains = [g for (dep, ds, slo), g in gains_vllm.items() if slo == "strict"]
    assert max(strict_gains) > 1.8
