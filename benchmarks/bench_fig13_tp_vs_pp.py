"""Figure 13: cross-node TP vs pipeline parallelism for Falcon-180B.

Paper: (a) TP8 across nodes has >2× the median decode TBT of
TP4-within-node + PP2-across-nodes; (b) Sarathi-PP beats vLLM-PP by
3.6× (strict) / 1.48× (relaxed) and vLLM-TP8 is capped even under
relaxed SLOs.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig13_tp_vs_pp import run_decode_latency, run_parallel_capacity


def bench_fig13a_decode_latency(benchmark, report):
    points = benchmark.pedantic(run_decode_latency, rounds=1, iterations=1)
    rows = [[p.layout, str(p.batch_size), f"{p.tbt * 1e3:.1f}"] for p in points]
    report(
        "Fig 13a — decode-only TBT (Falcon-180B). "
        "Paper: cross-node TP8 >2× worse than TP4-PP2 hybrid.",
        format_table(["layout", "batch", "TBT (ms)"], rows),
    )
    by_key = {(p.layout, p.batch_size): p.tbt for p in points}
    for bs in (8, 16, 32, 64):
        assert by_key[("TP8-cross-node", bs)] > 1.5 * by_key[("TP4-PP2-hybrid", bs)]


def bench_fig13b_parallel_capacity(benchmark, report, bench_scale):
    cells = benchmark.pedantic(
        run_parallel_capacity, args=(bench_scale,), rounds=1, iterations=1
    )
    rows = [[c.system, c.slo_name, f"{c.capacity_qps:.2f}"] for c in cells]
    report(
        "Fig 13b — Falcon-180B capacity by parallel layout (sharegpt4). "
        "Paper: Sarathi-PP 3.6×/1.48× over vLLM-PP (strict/relaxed); "
        "TP8 capped by latency even when relaxed.",
        format_table(["system", "SLO", "capacity qps"], rows),
    )
    by_key = {(c.system, c.slo_name): c.capacity_qps for c in cells}
    assert by_key[("sarathi-PP", "strict")] >= by_key[("vllm-PP", "strict")]
    assert by_key[("sarathi-PP", "relaxed")] >= by_key[("vllm-PP", "relaxed")]
    assert by_key[("sarathi-PP", "relaxed")] > by_key[("vllm-TP8", "relaxed")]
