"""Figure 5: arithmetic intensity of linear operators vs token count.

Paper: decode batches sit far below the A100's ridge intensity
(memory-bound); prefill-sized token counts sit above it; hybrid
batches land near the ridge (LLaMA2-70B, 4×A100).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig05_intensity import run_intensity_sweep


def bench_fig05_intensity(benchmark, report):
    points = benchmark.pedantic(run_intensity_sweep, rounds=1, iterations=1)
    rows = [
        [
            str(p.num_tokens),
            f"{p.arithmetic_intensity:.1f}",
            f"{p.ridge_intensity:.0f}",
            "memory" if p.is_memory_bound else "compute",
        ]
        for p in points
    ]
    report(
        "Fig 5 — arithmetic intensity vs tokens (LLaMA2-70B, TP4 A100s). "
        "Paper: decodes memory-bound, prefills compute-bound, ridge between.",
        format_table(["tokens", "FLOPs/byte", "ridge", "regime"], rows),
    )
    by_tokens = {p.num_tokens: p for p in points}
    assert by_tokens[1].is_memory_bound
    assert by_tokens[32].is_memory_bound
    assert not by_tokens[1024].is_memory_bound
    # Intensity grows monotonically with token count.
    intensities = [p.arithmetic_intensity for p in points]
    assert intensities == sorted(intensities)
