"""Figure 4: iteration-time breakdown into linear / attention / others.

Paper: linear operators dominate runtime in both phases (>80% of
prefill time even at long sequences) and one decode token's linear
cost ≈ 128 prefill tokens' (Mistral-7B, A100).
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.experiments.fig04_breakdown import (
    decode_vs_prefill_linear_parity,
    run_breakdown,
)


def bench_fig04_breakdown(benchmark, report):
    rows_data = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    rows = [
        [
            r.phase,
            str(r.seq_len),
            f"{r.total * 1e3:.1f}",
            f"{r.linear / r.total:.0%}",
            f"{r.attention / r.total:.0%}",
            f"{(r.others + r.overhead_and_comm) / r.total:.0%}",
        ]
        for r in rows_data
    ]
    parity = decode_vs_prefill_linear_parity()
    report(
        "Fig 4 — runtime breakdown (Mistral-7B, 1×A100). "
        "Paper: linear ops dominate; 1 decode token ≈ 128 prefill tokens "
        f"of linear cost (measured: ≈{parity:.0f}).",
        format_table(
            ["phase", "seq len", "total (ms)", "linear", "attention", "others"], rows
        ),
    )
    prefill_rows = [r for r in rows_data if r.phase == "prefill"]
    assert all(r.linear_fraction > 0.5 for r in prefill_rows)
    # Attention share grows with sequence length during prefill.
    fracs = [r.attention / r.total for r in prefill_rows]
    assert fracs[-1] > fracs[0]
    assert 32 <= parity <= 512
